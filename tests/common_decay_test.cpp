#include "common/decay.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hk {
namespace {

TEST(DecayTableTest, ExponentialMatchesPow) {
  DecayTable table(DecayFunction::kExponential, 1.08);
  for (uint32_t c = 1; c < 100; ++c) {
    EXPECT_NEAR(table.Probability(c), std::pow(1.08, -static_cast<double>(c)), 1e-9)
        << "C=" << c;
  }
}

TEST(DecayTableTest, ProbabilityOneAtZero) {
  for (const auto f : {DecayFunction::kExponential, DecayFunction::kPolynomial,
                       DecayFunction::kSigmoid}) {
    DecayTable table(f, 1.08);
    EXPECT_DOUBLE_EQ(table.Probability(0), 1.0);
    Rng rng(1);
    EXPECT_TRUE(table.ShouldDecay(0, rng));  // claiming an empty bucket is certain
  }
}

TEST(DecayTableTest, MonotonicallyDecreasing) {
  for (const auto f : {DecayFunction::kExponential, DecayFunction::kPolynomial,
                       DecayFunction::kSigmoid}) {
    DecayTable table(f, f == DecayFunction::kPolynomial ? 2.0 : 1.08);
    for (uint32_t c = 1; c < table.cutoff(); ++c) {
      EXPECT_LE(table.Probability(c), table.Probability(c - 1))
          << DecayFunctionName(f) << " C=" << c;
    }
  }
}

TEST(DecayTableTest, BeyondCutoffNeverDecays) {
  DecayTable table(DecayFunction::kExponential, 1.08);
  Rng rng(7);
  const uint32_t cutoff = table.cutoff();
  EXPECT_GT(cutoff, 50u);  // far beyond the paper's "C ~ 50 is immune"
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(table.ShouldDecay(cutoff, rng));
    EXPECT_FALSE(table.ShouldDecay(cutoff + 1000, rng));
  }
  EXPECT_DOUBLE_EQ(table.Probability(cutoff + 1), 0.0);
}

TEST(DecayTableTest, EmpiricalRateMatchesProbability) {
  DecayTable table(DecayFunction::kExponential, 1.08);
  Rng rng(13);
  // b^-9 ~ 0.50 for b=1.08; sample the coin.
  const uint32_t c = 9;
  const double p = table.Probability(c);
  int decays = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (table.ShouldDecay(c, rng)) {
      ++decays;
    }
  }
  EXPECT_NEAR(static_cast<double>(decays) / kTrials, p, 0.01);
}

TEST(DecayTableTest, LargerBaseDecaysLess) {
  DecayTable small(DecayFunction::kExponential, 1.05);
  DecayTable large(DecayFunction::kExponential, 1.5);
  for (uint32_t c = 1; c < 30; ++c) {
    EXPECT_GT(small.Probability(c), large.Probability(c));
  }
}

TEST(DecayTableTest, PolynomialMatchesFormula) {
  DecayTable table(DecayFunction::kPolynomial, 2.0);
  for (uint32_t c = 2; c < 50; ++c) {
    EXPECT_NEAR(table.Probability(c), std::pow(static_cast<double>(c), -2.0), 1e-9);
  }
}

TEST(DecayTableTest, SigmoidStaysWithinUnit) {
  DecayTable table(DecayFunction::kSigmoid, 1.08);
  for (uint32_t c = 0; c < table.cutoff(); ++c) {
    EXPECT_GE(table.Probability(c), 0.0);
    EXPECT_LE(table.Probability(c), 1.0);
  }
}

TEST(DecayTableTest, NamesAreStable) {
  EXPECT_STREQ(DecayFunctionName(DecayFunction::kExponential), "exponential(b^-C)");
  EXPECT_STREQ(DecayFunctionName(DecayFunction::kPolynomial), "polynomial(C^-b)");
  EXPECT_STREQ(DecayFunctionName(DecayFunction::kSigmoid), "sigmoid");
}

TEST(DecayTableTest, SmallCountersNearCertainDecay) {
  // Section III-B: "when the value is small (e.g., 3) ... the probability is
  // close to 1".
  DecayTable table(DecayFunction::kExponential, 1.08);
  EXPECT_GT(table.Probability(3), 0.75);
}

TEST(DecayTableTest, SharedTableCacheReturnsStableReferences) {
  const DecayTable& a = SharedDecayTable(DecayFunction::kExponential, 1.08);
  const DecayTable& b = SharedDecayTable(DecayFunction::kExponential, 1.08);
  EXPECT_EQ(&a, &b);  // one table per (function, base)
  const DecayTable& c = SharedDecayTable(DecayFunction::kExponential, 1.05);
  EXPECT_NE(&a, &c);
  EXPECT_NEAR(a.Probability(10), DecayTable(DecayFunction::kExponential, 1.08).Probability(10),
              0.0);
}

TEST(DecayTableTest, GeometricTrialsPastCutoffNeverDecays) {
  DecayTable table(DecayFunction::kExponential, 1.08);
  Rng rng(3);
  EXPECT_EQ(table.GeometricTrials(table.cutoff(), rng), DecayTable::kNeverDecays);
  EXPECT_EQ(table.GeometricTrials(table.cutoff() + 100, rng), DecayTable::kNeverDecays);
  // p == 1 at c == 0: the first coin always lands.
  EXPECT_EQ(table.GeometricTrials(0, rng), 1u);
}

TEST(DecayTableTest, GeometricTrialsMatchesGeometricDistribution) {
  // One inverse-transform sample must be distributed as the number of
  // ShouldDecay calls up to the first success: chi-square the empirical
  // trial counts against the geometric pmf p(1-p)^(k-1) at a fixed seed.
  DecayTable table(DecayFunction::kExponential, 1.08);
  Rng rng(20260730);
  const uint32_t c = 20;  // p = 1.08^-20 ~ 0.215
  const double p = table.Probability(c);
  constexpr int kSamples = 40000;
  constexpr int kBins = 16;  // trials 1..15 plus the >= 16 tail
  std::vector<int> observed(kBins, 0);
  for (int s = 0; s < kSamples; ++s) {
    const uint64_t trials = table.GeometricTrials(c, rng);
    observed[trials < kBins ? trials : kBins - 1] += 1;
  }
  EXPECT_EQ(observed[0], 0);  // trials start at 1
  double chi2 = 0.0;
  for (int k = 1; k < kBins; ++k) {
    const double pk = k < kBins - 1 ? p * std::pow(1.0 - p, k - 1)
                                    : std::pow(1.0 - p, kBins - 2);  // tail mass
    const double expected = pk * kSamples;
    ASSERT_GT(expected, 8.0) << "bin " << k;  // chi-square validity
    chi2 += (observed[k] - expected) * (observed[k] - expected) / expected;
  }
  // 14 degrees of freedom; critical value ~ 31.3 at alpha = 0.005. The seed
  // is fixed, so this either always passes or flags a real distribution bug.
  EXPECT_LT(chi2, 31.3);
}

}  // namespace
}  // namespace hk
