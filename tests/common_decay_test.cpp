#include "common/decay.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hk {
namespace {

TEST(DecayTableTest, ExponentialMatchesPow) {
  DecayTable table(DecayFunction::kExponential, 1.08);
  for (uint32_t c = 1; c < 100; ++c) {
    EXPECT_NEAR(table.Probability(c), std::pow(1.08, -static_cast<double>(c)), 1e-9)
        << "C=" << c;
  }
}

TEST(DecayTableTest, ProbabilityOneAtZero) {
  for (const auto f : {DecayFunction::kExponential, DecayFunction::kPolynomial,
                       DecayFunction::kSigmoid}) {
    DecayTable table(f, 1.08);
    EXPECT_DOUBLE_EQ(table.Probability(0), 1.0);
    Rng rng(1);
    EXPECT_TRUE(table.ShouldDecay(0, rng));  // claiming an empty bucket is certain
  }
}

TEST(DecayTableTest, MonotonicallyDecreasing) {
  for (const auto f : {DecayFunction::kExponential, DecayFunction::kPolynomial,
                       DecayFunction::kSigmoid}) {
    DecayTable table(f, f == DecayFunction::kPolynomial ? 2.0 : 1.08);
    for (uint32_t c = 1; c < table.cutoff(); ++c) {
      EXPECT_LE(table.Probability(c), table.Probability(c - 1))
          << DecayFunctionName(f) << " C=" << c;
    }
  }
}

TEST(DecayTableTest, BeyondCutoffNeverDecays) {
  DecayTable table(DecayFunction::kExponential, 1.08);
  Rng rng(7);
  const uint32_t cutoff = table.cutoff();
  EXPECT_GT(cutoff, 50u);  // far beyond the paper's "C ~ 50 is immune"
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(table.ShouldDecay(cutoff, rng));
    EXPECT_FALSE(table.ShouldDecay(cutoff + 1000, rng));
  }
  EXPECT_DOUBLE_EQ(table.Probability(cutoff + 1), 0.0);
}

TEST(DecayTableTest, EmpiricalRateMatchesProbability) {
  DecayTable table(DecayFunction::kExponential, 1.08);
  Rng rng(13);
  // b^-9 ~ 0.50 for b=1.08; sample the coin.
  const uint32_t c = 9;
  const double p = table.Probability(c);
  int decays = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (table.ShouldDecay(c, rng)) {
      ++decays;
    }
  }
  EXPECT_NEAR(static_cast<double>(decays) / kTrials, p, 0.01);
}

TEST(DecayTableTest, LargerBaseDecaysLess) {
  DecayTable small(DecayFunction::kExponential, 1.05);
  DecayTable large(DecayFunction::kExponential, 1.5);
  for (uint32_t c = 1; c < 30; ++c) {
    EXPECT_GT(small.Probability(c), large.Probability(c));
  }
}

TEST(DecayTableTest, PolynomialMatchesFormula) {
  DecayTable table(DecayFunction::kPolynomial, 2.0);
  for (uint32_t c = 2; c < 50; ++c) {
    EXPECT_NEAR(table.Probability(c), std::pow(static_cast<double>(c), -2.0), 1e-9);
  }
}

TEST(DecayTableTest, SigmoidStaysWithinUnit) {
  DecayTable table(DecayFunction::kSigmoid, 1.08);
  for (uint32_t c = 0; c < table.cutoff(); ++c) {
    EXPECT_GE(table.Probability(c), 0.0);
    EXPECT_LE(table.Probability(c), 1.0);
  }
}

TEST(DecayTableTest, NamesAreStable) {
  EXPECT_STREQ(DecayFunctionName(DecayFunction::kExponential), "exponential(b^-C)");
  EXPECT_STREQ(DecayFunctionName(DecayFunction::kPolynomial), "polynomial(C^-b)");
  EXPECT_STREQ(DecayFunctionName(DecayFunction::kSigmoid), "sigmoid");
}

TEST(DecayTableTest, SmallCountersNearCertainDecay) {
  // Section III-B: "when the value is small (e.g., 3) ... the probability is
  // close to 1".
  DecayTable table(DecayFunction::kExponential, 1.08);
  EXPECT_GT(table.Probability(3), 0.75);
}

}  // namespace
}  // namespace hk
