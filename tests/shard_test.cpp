// Concurrency and determinism tests for the sharded pipeline (src/shard/):
// partition stability, merge semantics, producer/consumer stress with
// random burst sizes, shutdown while rings are still draining, and the
// determinism contract - same seed and shard count means bit-identical
// results across execution modes, burst shapes, and runs (the TSan CI job
// runs this suite with full race detection).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "shard/merge.h"
#include "shard/partition.h"
#include "shard/sharded_topk.h"
#include "sketch/registry.h"
#include "trace/generators.h"
#include "trace/oracle.h"

namespace hk {
namespace {

SketchDefaults TestDefaults() {
  SketchDefaults d;
  d.memory_bytes = 50 * 1024;
  d.k = 50;
  d.key_kind = KeyKind::kSynthetic4B;
  d.seed = 3;
  return d;
}

std::vector<FlowId> ZipfPackets(uint64_t n, uint64_t seed) {
  ZipfTraceConfig config;
  config.num_packets = n;
  config.num_ranks = n / 8;
  config.skew = 1.1;
  config.seed = seed;
  return MakeZipfTrace(config).packets;
}

TEST(ShardPartitionTest, StableAndBalanced) {
  const ShardPartitioner partitioner(8);
  std::vector<uint64_t> load(8, 0);
  SplitMix64 sm(42);
  for (int i = 0; i < 100'000; ++i) {
    const FlowId id = sm.Next();
    const size_t shard = partitioner.ShardOf(id);
    ASSERT_LT(shard, 8u);
    EXPECT_EQ(shard, partitioner.ShardOf(id));  // stable per flow
    ++load[shard];
  }
  for (const uint64_t l : load) {
    // 100k uniform keys over 8 shards: each shard within 10% of 12.5k.
    EXPECT_NEAR(static_cast<double>(l), 12'500.0, 1'250.0);
  }
}

TEST(ShardMergeTest, OrdersUnionAndTruncates) {
  const std::vector<std::vector<FlowCount>> per_shard = {
      {{7, 100}, {1, 5}},
      {},
      {{9, 100}, {2, 80}, {3, 5}},
  };
  const auto merged = MergeTopK(per_shard, 4);
  const std::vector<FlowCount> expected = {{7, 100}, {9, 100}, {2, 80}, {1, 5}};
  EXPECT_EQ(merged, expected);  // count desc, id asc on the tie, k-truncated
  EXPECT_EQ(MergeTopK({}, 10), std::vector<FlowCount>{});
}

TEST(ShardMergeTest, SumByIdCombinesOverlappingLists) {
  // The window-ring shape: per-epoch reports of one stream, so the same
  // flow id recurs across lists and its sliding estimate is the sum.
  const std::vector<std::vector<FlowCount>> per_epoch = {
      {{7, 100}, {2, 40}, {1, 5}},
      {},
      {{2, 70}, {7, 30}, {3, 60}},
  };
  const auto merged = MergeTopK(per_epoch, 3, MergeMode::kSumById);
  const std::vector<FlowCount> expected = {{7, 130}, {2, 110}, {3, 60}};
  EXPECT_EQ(merged, expected);
  // Regression pin for the documented kDisjoint contract: the fast path
  // fed overlapping lists emits duplicate ids instead of combining them.
  const auto disjoint = MergeTopK(per_epoch, 6, MergeMode::kDisjoint);
  size_t sevens = 0;
  for (const auto& fc : disjoint) {
    sevens += fc.id == 7 ? 1 : 0;
  }
  EXPECT_EQ(sevens, 2u);
  EXPECT_EQ(MergeTopK({}, 10, MergeMode::kSumById), std::vector<FlowCount>{});
}

TEST(ShardedTopKTest, RejectsDegenerateSpecs) {
  EXPECT_THROW(MakeSketch("Sharded:n=0"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("Sharded:n=2000"), std::invalid_argument);  // > kMaxShards
  EXPECT_THROW(MakeSketch("Sharded:inner=Sharded:n=2"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("Sharded:threads=1,ring=0"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("Sharded:threads=1,burst=0"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("Sharded:n=2,inner=NotARealSketch"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("Sharded:bogus=1"), std::invalid_argument);
  // Worker count is always the shard count; threads= is a 0/1 mode switch.
  EXPECT_THROW(MakeSketch("Sharded:threads=2"), std::invalid_argument);
  // Ring tuning without the threaded mode would be silently inert.
  EXPECT_THROW(MakeSketch("Sharded:ring=64"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("Sharded:burst=16"), std::invalid_argument);
}

TEST(ShardedTopKTest, RoutesEveryFlowToItsOwningShard) {
  ShardedTopKOptions options;
  options.num_shards = 4;
  options.inner_spec = "SS:mem=64kb";
  auto algo = std::make_unique<ShardedTopK>(options, TestDefaults());
  const auto packets = ZipfPackets(20'000, 11);
  algo->InsertBatch(packets);
  // Each packet must be counted by exactly the shard the partitioner
  // names: per-shard totals add up to the stream, and a sampled flow is
  // visible only in its owning shard.
  uint64_t total = 0;
  for (size_t s = 0; s < algo->num_shards(); ++s) {
    for (const auto& fc : algo->shard(s).TopK(100'000)) {
      total += fc.count;
    }
  }
  EXPECT_EQ(total, packets.size());
  for (size_t i = 0; i < 50; ++i) {
    const FlowId id = packets[i * 97 % packets.size()];
    const size_t owner = algo->ShardOf(id);
    for (size_t s = 0; s < algo->num_shards(); ++s) {
      if (s != owner) {
        EXPECT_EQ(algo->shard(s).EstimateSize(id), 0u) << "flow " << id << " leaked to " << s;
      }
    }
  }
}

// --- determinism ----------------------------------------------------------

TEST(ShardedDeterminismTest, SingleShardThreadedEqualsSequentialInsertBatch) {
  const auto packets = ZipfPackets(100'000, 7);
  auto sequential = MakeSketch("HK-Minimum", TestDefaults());
  auto threaded = MakeSketch("Sharded:n=1,threads=1,inner=HK-Minimum", TestDefaults());
  sequential->InsertBatch(packets);
  threaded->InsertBatch(packets);
  threaded->Flush();
  EXPECT_EQ(sequential->TopK(50), threaded->TopK(50));
  for (FlowId id = 1; id <= 32; ++id) {
    EXPECT_EQ(sequential->EstimateSize(id), threaded->EstimateSize(id)) << id;
  }
}

TEST(ShardedDeterminismTest, ThreadedEqualsSynchronousAcrossBurstShapes) {
  const auto packets = ZipfPackets(120'000, 13);
  auto sync = MakeSketch("Sharded:n=4,inner=HK-Minimum", TestDefaults());
  auto threaded = MakeSketch("Sharded:n=4,threads=1,inner=HK-Minimum", TestDefaults());
  auto scalar = MakeSketch("Sharded:n=4,inner=HK-Minimum", TestDefaults());

  sync->InsertBatch(packets);

  // Threaded side: random burst sizes so ring drains interleave with
  // production arbitrarily.
  Rng rng(99);
  size_t pos = 0;
  while (pos < packets.size()) {
    const size_t burst = std::min<size_t>(1 + rng.NextBounded(1000), packets.size() - pos);
    threaded->InsertBatch(std::span<const FlowId>(packets.data() + pos, burst));
    pos += burst;
  }
  threaded->Flush();

  for (const FlowId id : packets) {
    scalar->Insert(id);
  }

  EXPECT_EQ(sync->TopK(50), threaded->TopK(50));
  EXPECT_EQ(sync->TopK(50), scalar->TopK(50));
}

TEST(ShardedDeterminismTest, RepeatedThreadedRunsAreIdentical) {
  const auto packets = ZipfPackets(80'000, 17);
  std::vector<FlowCount> first;
  for (int run = 0; run < 3; ++run) {
    auto algo = MakeSketch("Sharded:n=8,threads=1,inner=HK-Minimum", TestDefaults());
    algo->InsertBatch(packets);
    const auto top = algo->TopK(50);
    if (run == 0) {
      first = top;
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(top, first) << "run " << run << " diverged";
    }
  }
}

// --- producer/consumer stress ---------------------------------------------

TEST(ShardedStressTest, RandomBurstsCountExactlyWithExactInner) {
  // An exact inner (Space-Saving with ample capacity) turns the stress run
  // into a lossless accounting check: after Flush, the merged counts must
  // reproduce the oracle exactly, whatever the ring/burst interleaving.
  ShardedTopKOptions options;
  options.num_shards = 4;
  options.threaded = true;
  options.ring_capacity = 256;  // small ring: force back-pressure often
  options.drain_burst = 64;
  options.inner_spec = "SS:mem=256kb";
  auto algo = std::make_unique<ShardedTopK>(options, TestDefaults());

  ZipfTraceConfig config;
  config.num_packets = 300'000;
  config.num_ranks = 2'000;
  config.skew = 1.0;
  config.seed = 23;
  const auto packets = MakeZipfTrace(config).packets;
  Oracle oracle;
  for (const FlowId id : packets) {
    oracle.Add(id);
  }

  Rng rng(7);
  size_t pos = 0;
  while (pos < packets.size()) {
    const size_t burst = std::min<size_t>(1 + rng.NextBounded(2048), packets.size() - pos);
    if (burst == 1) {
      algo->Insert(packets[pos]);
    } else {
      algo->InsertBatch(std::span<const FlowId>(packets.data() + pos, burst));
    }
    pos += burst;
  }
  algo->Flush();

  for (const auto& truth : oracle.TopK(200)) {
    EXPECT_EQ(algo->EstimateSize(truth.id), truth.count) << "flow " << truth.id;
  }
}

TEST(ShardedStressTest, WeightedStreamThreadedMatchesSynchronous) {
  const auto ids = ZipfPackets(40'000, 29);
  std::vector<uint64_t> weights;
  weights.reserve(ids.size());
  Rng rng(31);
  for (size_t i = 0; i < ids.size(); ++i) {
    weights.push_back(rng.NextBounded(4));  // exercises weight-0 skipping too
  }
  auto sync = MakeSketch("Sharded:n=4,inner=HK-Minimum:cb=32", TestDefaults());
  auto threaded = MakeSketch("Sharded:n=4,threads=1,inner=HK-Minimum:cb=32", TestDefaults());
  sync->InsertBatch(ids, weights);
  threaded->InsertBatch(ids, weights);
  threaded->Flush();
  EXPECT_EQ(sync->TopK(50), threaded->TopK(50));
}

// A test double that counts applied packets into caller-owned storage, so
// the drain guarantee stays observable after the ShardedTopK is gone.
class CountingAlgorithm : public TopKAlgorithm {
 public:
  explicit CountingAlgorithm(uint64_t* applied) : applied_(applied) {}

  void Insert(FlowId) override { ++*applied_; }
  std::vector<FlowCount> TopK(size_t) const override { return {}; }
  uint64_t EstimateSize(FlowId) const override { return 0; }
  std::string name() const override { return "counting-test-double"; }
  size_t MemoryBytes() const override { return sizeof(*this); }

 private:
  uint64_t* applied_;  // written only by this shard's worker
};

TEST(ShardedStressTest, ShutdownWhileDrainingAppliesEverything) {
  // Destroy the instance the moment the producer is done: the rings are
  // still full of queued packets, and the destructor must drain them (not
  // drop them) before joining. Injected counting inners write into
  // storage that outlives the instance, so the guarantee is checked on
  // the rounds that really do race the drain.
  constexpr size_t kShards = 4;
  constexpr uint64_t kPackets = 50'000;
  for (int round = 0; round < 5; ++round) {
    uint64_t applied[kShards] = {};
    ShardedTopKOptions options;
    options.num_shards = kShards;
    options.threaded = true;
    options.ring_capacity = 128;  // small rings: the producer finishes well
    options.drain_burst = 32;     // ahead of the workers
    std::vector<std::unique_ptr<TopKAlgorithm>> inners;
    for (size_t s = 0; s < kShards; ++s) {
      inners.push_back(std::make_unique<CountingAlgorithm>(&applied[s]));
    }
    auto algo = std::make_unique<ShardedTopK>(options, std::move(inners));
    SplitMix64 sm(1000 + round);
    for (uint64_t i = 0; i < kPackets; ++i) {
      algo->Insert(sm.Next());
    }
    algo.reset();  // no Flush: the destructor races the drain
    uint64_t total = 0;
    for (const uint64_t a : applied) {
      total += a;
    }
    EXPECT_EQ(total, kPackets) << "round " << round << " lost packets on shutdown";
  }
}

TEST(ShardedStressTest, FlushFromProducerMakesAllInsertsVisible) {
  auto algo = MakeSketch("Sharded:n=8,threads=1,ring=64,inner=SS:mem=128kb", TestDefaults());
  for (int i = 0; i < 5'000; ++i) {
    algo->Insert(42);
    algo->Insert(static_cast<FlowId>(100 + (i % 10)));
  }
  algo->Flush();
  EXPECT_EQ(algo->EstimateSize(42), 5'000u);
}

}  // namespace
}  // namespace hk
