#include "sketch/count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"

namespace hk {
namespace {

TEST(CountSketchTest, SingleFlowIsExact) {
  CountSketch cs(3, 1024, 1);
  for (int i = 0; i < 400; ++i) {
    cs.Add(7);
  }
  EXPECT_EQ(cs.Query(7), 400u);
}

TEST(CountSketchTest, QueryNeverNegative) {
  CountSketch cs(3, 32, 2);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    cs.Add(rng.NextBounded(500));
  }
  for (FlowId id = 0; id < 600; ++id) {
    // uint64_t is unsigned; the real check is that huge values (wrapped
    // negatives) never appear.
    EXPECT_LT(cs.Query(id), 1u << 20);
  }
}

TEST(CountSketchTest, MedianEstimateNearTruthUnderNoise) {
  CountSketch cs(5, 2048, 4);
  std::map<FlowId, uint64_t> truth;
  Rng rng(7);
  // One elephant among background noise.
  for (int i = 0; i < 30000; ++i) {
    const FlowId id = (i % 3 == 0) ? 1 : rng.NextBounded(2000) + 10;
    cs.Add(id);
    ++truth[id];
  }
  const double est = static_cast<double>(cs.Query(1));
  const double real = static_cast<double>(truth[1]);
  EXPECT_NEAR(est, real, real * 0.15);
}

TEST(CountSketchTopKTest, FindsPlantedElephants) {
  auto algo = CountSketchTopK::FromMemory(64 * 1024, 5, 4);
  Rng rng(11);
  for (int rep = 0; rep < 800; ++rep) {
    for (FlowId e = 1; e <= 5; ++e) {
      algo->Insert(e);
    }
    for (int m = 0; m < 10; ++m) {
      algo->Insert(1000 + rng.NextBounded(3000));
    }
  }
  const auto top = algo->TopK(5);
  ASSERT_EQ(top.size(), 5u);
  for (const auto& fc : top) {
    EXPECT_LE(fc.id, 5u);
  }
}

TEST(CountSketchTopKTest, MemoryBudget) {
  const size_t budget = 40 * 1024;
  auto algo = CountSketchTopK::FromMemory(budget, 50, 8);
  EXPECT_LE(algo->MemoryBytes(), budget + 12);
  EXPECT_EQ(algo->name(), "Count-Sketch");
}

}  // namespace
}  // namespace hk
