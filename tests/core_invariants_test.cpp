// Property suites for the paper's theorems, swept across configurations.
//
//   Theorem 2/4 (no over-estimation): with collision-free fingerprints,
//   every HeavyKeeper counter for a flow is <= its true count, at all times.
//
//   Theorem 1: when the candidate store is full and a new flow is admitted,
//   its reported estimate is exactly nmin + 1.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "common/random.h"
#include "core/heavykeeper.h"
#include "core/hk_topk.h"
#include "ovs/pipeline.h"
#include "sketch/registry.h"
#include "trace/generators.h"
#include "trace/oracle.h"

namespace hk {
namespace {

using Config = std::tuple<int /*version*/, size_t /*d*/, size_t /*w*/, double /*b*/,
                          uint64_t /*seed*/>;

class NoOverestimationSweep : public ::testing::TestWithParam<Config> {};

TEST_P(NoOverestimationSweep, EstimateNeverExceedsTruthAtAnyTime) {
  const auto [version_int, d, w, b, seed] = GetParam();
  const auto version = static_cast<HkVersion>(version_int);

  HeavyKeeperConfig config;
  config.d = d;
  config.w = w;
  config.b = b;
  config.fingerprint_bits = 32;  // collision-free at this flow count
  config.counter_bits = 32;
  config.seed = seed;
  HeavyKeeper hk(config);

  std::map<FlowId, uint64_t> truth;
  Rng rng(seed ^ 0xabcdULL);
  for (int i = 0; i < 30000; ++i) {
    // Skewed stream: 10 hot flows + long tail.
    const FlowId id = (rng.NextBounded(100) < 60) ? rng.NextBounded(10) + 1
                                                  : rng.NextBounded(3000) + 100;
    ++truth[id];
    switch (version) {
      case HkVersion::kBasic:
        hk.InsertBasic(id);
        break;
      case HkVersion::kParallel:
        hk.InsertParallel(id, true, 0);
        break;
      case HkVersion::kMinimum:
        hk.InsertMinimum(id, true, 0);
        break;
    }
    if (i % 500 == 0) {
      for (const auto& [fid, count] : truth) {
        ASSERT_LE(hk.Query(fid), count) << "packet " << i << " flow " << fid;
      }
    }
  }
  for (const auto& [fid, count] : truth) {
    EXPECT_LE(hk.Query(fid), count) << "flow " << fid;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoOverestimationSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),          // Basic/Parallel/Minimum
                       ::testing::Values<size_t>(1, 2, 4),  // d
                       ::testing::Values<size_t>(64, 1024),  // w
                       ::testing::Values(1.08, 1.3),        // b
                       ::testing::Values<uint64_t>(1, 99)));

class Theorem1Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1Sweep, AdmittedFlowsReportNminPlusOne) {
  // Instrumented re-implementation of the Parallel pipeline admission to
  // observe the (estimate, nmin) pairs at admission time.
  HeavyKeeperConfig config;
  config.d = 2;
  config.w = 2048;
  config.fingerprint_bits = 32;  // rule out collisions: test the theorem itself
  config.counter_bits = 32;
  config.seed = GetParam();
  HeavyKeeper sketch(config);
  HeapTopKStore store(16);

  Rng rng(GetParam() ^ 0x7177ULL);
  int admissions = 0;
  for (int i = 0; i < 40000; ++i) {
    const FlowId id = (rng.NextBounded(100) < 50) ? rng.NextBounded(30) + 1
                                                  : rng.NextBounded(2000) + 100;
    const bool monitored = store.Contains(id);
    const uint64_t nmin = store.Full() ? store.MinCount() : ~0ULL;
    const uint32_t est = sketch.InsertParallel(id, monitored, nmin);
    if (monitored) {
      store.RaiseCount(id, est);
    } else if (!store.Full()) {
      store.Insert(id, est);
    } else if (est > store.MinCount()) {
      // Theorem 1: collision-free => est can only be nmin + 1 here.
      ASSERT_EQ(est, store.MinCount() + 1) << "packet " << i;
      store.ReplaceMin(id, est);
      ++admissions;
    }
  }
  EXPECT_GT(admissions, 0) << "sweep never exercised the admission path";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Sweep, ::testing::Values(3, 7, 11, 19, 23));

class PipelinePrecisionSweep
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(PipelinePrecisionSweep, PrecisionScalesWithSkew) {
  const auto [version_int, skew, seed] = GetParam();
  const auto version = static_cast<HkVersion>(version_int);
  ZipfTraceConfig tconfig;
  tconfig.num_packets = 150000;
  tconfig.num_ranks = 30000;
  tconfig.skew = skew;
  tconfig.seed = seed;
  const Trace trace = MakeZipfTrace(tconfig);
  Oracle oracle(trace);

  auto algo = HeavyKeeperTopK<>::FromMemory(version, 40 * 1024, 50, 4, seed);
  for (const FlowId id : trace.packets) {
    algo->Insert(id);
  }
  const auto top = algo->TopK(50);
  const uint64_t kth = oracle.KthSize(50);
  size_t correct = 0;
  for (const auto& fc : top) {
    if (oracle.Count(fc.id) >= kth) {
      ++correct;
    }
  }
  // At 40KB for 30k flows even the flattest sweep point must exceed 80%.
  EXPECT_GE(correct, 40u) << "skew " << skew;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelinePrecisionSweep,
                         ::testing::Combine(::testing::Values(1, 2),  // Parallel, Minimum
                                            ::testing::Values(0.8, 1.0, 1.5, 2.0),
                                            ::testing::Values<uint64_t>(5, 6)));

// --- seed determinism (the audit the sharded pipeline depends on) ---------
//
// Everything downstream - differential tests, sharded-vs-single
// comparisons, bench JSON trajectories - assumes a seed pins the world:
// trace generators must be pure functions of their config, and the
// sharded pipeline must be a pure function of (seed, shard count, stream),
// no matter how packets are grouped into bursts or which internal order
// the shards are touched in.

TEST(SeedDeterminismTest, TraceGeneratorsArePureFunctionsOfTheirConfig) {
  ZipfTraceConfig config;
  config.num_packets = 50'000;
  config.num_ranks = 5'000;
  config.skew = 1.1;
  config.seed = 77;
  EXPECT_EQ(MakeZipfTrace(config).packets, MakeZipfTrace(config).packets);

  config.seed = 78;
  const auto other = MakeZipfTrace(config).packets;
  config.seed = 77;
  EXPECT_NE(MakeZipfTrace(config).packets, other);

  EXPECT_EQ(MakeCampusTrace(20'000, 5).packets, MakeCampusTrace(20'000, 5).packets);
  EXPECT_EQ(MakeCaidaTrace(20'000, 5).packets, MakeCaidaTrace(20'000, 5).packets);
}

TEST(SeedDeterminismTest, WirePacketsArePureFunctionsOfTheirConfig) {
  const auto a = MakeWirePackets(20'000, 2'000, 1.0, 9);
  const auto b = MakeWirePackets(20'000, 2'000, 1.0, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(ParseHeader(a[i]).Id(), ParseHeader(b[i]).Id()) << i;
  }
}

TEST(SeedDeterminismTest, ShardedPipelineIsAPureFunctionOfSeedAndShardCount) {
  ZipfTraceConfig tconfig;
  tconfig.num_packets = 60'000;
  tconfig.num_ranks = 8'000;
  tconfig.skew = 1.2;
  tconfig.seed = 41;
  const auto packets = MakeZipfTrace(tconfig).packets;

  SketchDefaults defaults;
  defaults.memory_bytes = 40 * 1024;
  defaults.k = 40;
  defaults.seed = 6;

  for (const size_t shards : {1u, 2u, 5u, 8u}) {
    const std::string spec = "Sharded:n=" + std::to_string(shards) + ",inner=HK-Minimum";
    // Scalar inserts (shards touched in arrival order) vs one whole-stream
    // batch (shards touched in index order): grouping must not matter.
    auto scalar = MakeSketch(spec, defaults);
    auto batched = MakeSketch(spec, defaults);
    for (const FlowId id : packets) {
      scalar->Insert(id);
    }
    batched->InsertBatch(packets);
    EXPECT_EQ(scalar->TopK(40), batched->TopK(40)) << spec;

    // And an independent rebuild from the same seed reproduces the state.
    auto rebuilt = MakeSketch(spec, defaults);
    rebuilt->InsertBatch(packets);
    EXPECT_EQ(batched->TopK(40), rebuilt->TopK(40)) << spec;
  }
}

}  // namespace
}  // namespace hk
