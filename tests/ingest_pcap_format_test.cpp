// Malformed-capture hardening for PcapReader (the satellite contract of
// ISSUE 5): truncated headers, bogus capture lengths, unknown linktypes,
// zero-length packets, hostile pcapng block structure. The reader must
// skip or stop cleanly - stats() accounts for every skipped slice, ok()
// goes false only on container-level corruption - and must never read
// past the bytes it was handed (the suite runs under ASan in the
// sanitizer CI job, so an over-read is a hard failure, not a flake).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ingest/pcap_format.h"
#include "ingest/pcap_reader.h"
#include "ingest/pcap_writer.h"

namespace hk {
namespace {

using namespace pcapfmt;

void Put16(std::vector<uint8_t>& out, uint16_t v) {
  uint8_t b[2];
  std::memcpy(b, &v, sizeof(b));
  out.insert(out.end(), b, b + sizeof(b));
}

void Put32(std::vector<uint8_t>& out, uint32_t v) {
  uint8_t b[4];
  std::memcpy(b, &v, sizeof(b));
  out.insert(out.end(), b, b + sizeof(b));
}

// A minimal valid classic pcap (Ethernet linktype) global header.
std::vector<uint8_t> ClassicHeader(uint32_t link_type = kLinkTypeEthernet) {
  std::vector<uint8_t> out;
  Put32(out, kMagicMicros);
  Put16(out, kPcapVersionMajor);
  Put16(out, kPcapVersionMinor);
  Put32(out, 0);
  Put32(out, 0);
  Put32(out, 65535);
  Put32(out, link_type);
  return out;
}

// One Ethernet+IPv4+UDP frame (42 bytes) for flow 10.0.0.1 -> 10.0.0.2.
std::vector<uint8_t> UdpFrame() {
  static const uint8_t frame[42] = {
      // Ethernet
      0x02, 0, 0, 0, 0, 2, 0x02, 0, 0, 0, 0, 1, 0x08, 0x00,
      // IPv4: ver/ihl, tos, totlen=28, id, frag, ttl, proto=17, csum
      0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
      // src 10.0.0.1, dst 10.0.0.2
      0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00, 0x00, 0x02,
      // UDP: sport 1000, dport 53, len 8, csum 0
      0x03, 0xe8, 0x00, 0x35, 0x00, 0x08, 0x00, 0x00};
  return std::vector<uint8_t>(frame, frame + sizeof(frame));
}

void AppendRecord(std::vector<uint8_t>& out, const std::vector<uint8_t>& frame,
                  uint32_t caplen_override = 0, uint32_t origlen = 0) {
  const uint32_t caplen =
      caplen_override != 0 ? caplen_override : static_cast<uint32_t>(frame.size());
  Put32(out, 1);  // ts_sec
  Put32(out, 0);  // ts_usec
  Put32(out, caplen);
  Put32(out, origlen != 0 ? origlen : caplen);
  out.insert(out.end(), frame.begin(), frame.end());
}

struct DrainResult {
  uint64_t yielded = 0;
  bool ok = false;
  IngestStats stats;
  std::string error;
};

DrainResult Drain(std::vector<uint8_t> bytes,
                  PcapKeyPolicy policy = PcapKeyPolicy::kFiveTuple) {
  PcapReader reader(policy);
  DrainResult result;
  if (!reader.OpenBuffer(std::move(bytes))) {
    result.error = reader.error();
    return result;
  }
  PacketRecord record;
  while (reader.Next(&record)) {
    ++result.yielded;
  }
  result.ok = reader.ok();
  result.stats = reader.stats();
  result.error = reader.error();
  return result;
}

TEST(PcapHardeningTest, EmptyAndTinyBuffersFailCleanly) {
  EXPECT_FALSE(PcapReader().OpenBuffer({}));
  EXPECT_FALSE(PcapReader().OpenBuffer({0xa1}));
  EXPECT_FALSE(PcapReader().OpenBuffer({0xde, 0xad, 0xbe, 0xef}));  // bad magic
}

TEST(PcapHardeningTest, TruncatedGlobalHeaderFailsOpen) {
  std::vector<uint8_t> bytes = ClassicHeader();
  bytes.resize(10);
  PcapReader reader;
  EXPECT_FALSE(reader.OpenBuffer(std::move(bytes)));
  EXPECT_FALSE(reader.ok());
}

TEST(PcapHardeningTest, UnknownLinktypeFailsOpen) {
  PcapReader reader;
  EXPECT_FALSE(reader.OpenBuffer(ClassicHeader(/*link_type=*/147)));
  EXPECT_NE(reader.error().find("linktype"), std::string::npos) << reader.error();
}

TEST(PcapHardeningTest, TruncatedRecordHeaderStopsCleanly) {
  std::vector<uint8_t> bytes = ClassicHeader();
  AppendRecord(bytes, UdpFrame());
  Put32(bytes, 2);  // half a record header
  Put32(bytes, 0);
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_EQ(result.yielded, 1u);  // the valid record still parses
  EXPECT_FALSE(result.ok);
}

TEST(PcapHardeningTest, CaplenOverrunningTheFileStopsCleanly) {
  std::vector<uint8_t> bytes = ClassicHeader();
  AppendRecord(bytes, UdpFrame(), /*caplen_override=*/100000);  // claims >> bytes present
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("overrun"), std::string::npos) << result.error;
}

TEST(PcapHardeningTest, BogusGiantCaplenStopsCleanly) {
  std::vector<uint8_t> bytes = ClassicHeader();
  AppendRecord(bytes, UdpFrame(), /*caplen_override=*/0xf0000000u);
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_FALSE(result.ok);
}

TEST(PcapHardeningTest, ZeroLengthAndTruncatedFramesAreSkippedNotFatal) {
  std::vector<uint8_t> bytes = ClassicHeader();
  // Zero captured bytes.
  Put32(bytes, 1);
  Put32(bytes, 0);
  Put32(bytes, 0);
  Put32(bytes, 60);
  // Seven bytes of Ethernet (too short for any header).
  std::vector<uint8_t> stub(7, 0xab);
  AppendRecord(bytes, stub);
  // IPv4 claims ihl=5 but the capture cuts off mid-address.
  std::vector<uint8_t> cut = UdpFrame();
  cut.resize(30);
  AppendRecord(bytes, cut);
  // A healthy record after all that still parses.
  AppendRecord(bytes, UdpFrame());
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.yielded, 1u);
  EXPECT_EQ(result.stats.skipped_other, 1u);      // zero-length
  EXPECT_EQ(result.stats.skipped_truncated, 2u);  // stub + cut
}

TEST(PcapHardeningTest, NonIpAndBadIpVersionsAreSkipped) {
  std::vector<uint8_t> bytes = ClassicHeader();
  // ARP ethertype.
  std::vector<uint8_t> arp = UdpFrame();
  arp[12] = 0x08;
  arp[13] = 0x06;
  AppendRecord(bytes, arp);
  // Ethertype says IPv4 but the version nibble is 7.
  std::vector<uint8_t> bad = UdpFrame();
  bad[14] = 0x75;
  AppendRecord(bytes, bad);
  // IPv4 with ihl < 20 bytes.
  std::vector<uint8_t> ihl = UdpFrame();
  ihl[14] = 0x43;
  AppendRecord(bytes, ihl);
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_EQ(result.stats.skipped_non_ip, 2u);
  EXPECT_EQ(result.stats.skipped_truncated, 1u);
}

TEST(PcapHardeningTest, VlanStackTruncatedInsideTheTagIsSkipped) {
  std::vector<uint8_t> bytes = ClassicHeader();
  std::vector<uint8_t> vlan = UdpFrame();
  vlan[12] = 0x81;  // 802.1Q, then the capture ends two bytes later
  vlan[13] = 0x00;
  vlan.resize(16);
  AppendRecord(bytes, vlan);
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_EQ(result.stats.skipped_truncated, 1u);
}

// --- pcapng container hardening ---------------------------------------

std::vector<uint8_t> NgSection() {
  std::vector<uint8_t> out;
  Put32(out, kBlockSectionHeader);
  Put32(out, 28);
  Put32(out, kByteOrderMagic);
  Put16(out, 1);
  Put16(out, 0);
  Put32(out, 0xffffffffu);
  Put32(out, 0xffffffffu);
  Put32(out, 28);
  return out;
}

void AppendNgInterface(std::vector<uint8_t>& out, uint32_t link_type = kLinkTypeEthernet) {
  Put32(out, kBlockInterfaceDescription);
  Put32(out, 20);
  Put16(out, static_cast<uint16_t>(link_type));
  Put16(out, 0);
  Put32(out, 65535);
  Put32(out, 20);
}

void AppendNgPacket(std::vector<uint8_t>& out, const std::vector<uint8_t>& frame,
                    uint32_t iface = 0) {
  const uint32_t caplen = static_cast<uint32_t>(frame.size());
  const uint32_t padded = (caplen + 3u) & ~3u;
  const uint32_t total = 32 + padded;
  Put32(out, kBlockEnhancedPacket);
  Put32(out, total);
  Put32(out, iface);
  Put32(out, 0);
  Put32(out, 0);
  Put32(out, caplen);
  Put32(out, caplen);
  out.insert(out.end(), frame.begin(), frame.end());
  out.insert(out.end(), padded - caplen, 0);
  Put32(out, total);
}

TEST(PcapNgHardeningTest, BadByteOrderMagicFailsAtFirstRead) {
  std::vector<uint8_t> bytes = NgSection();
  std::memset(bytes.data() + 8, 0xee, 4);
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_FALSE(result.ok);
}

TEST(PcapNgHardeningTest, BlockOverrunningTheFileStopsCleanly) {
  std::vector<uint8_t> bytes = NgSection();
  AppendNgInterface(bytes);
  std::vector<uint8_t> packet;
  AppendNgPacket(packet, UdpFrame());
  packet[4] = 0xff;  // inflate total_len past the buffer
  packet[5] = 0x0f;
  bytes.insert(bytes.end(), packet.begin(), packet.end());
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_FALSE(result.ok);
}

TEST(PcapNgHardeningTest, TrailingLengthMismatchStopsCleanly) {
  std::vector<uint8_t> bytes = NgSection();
  AppendNgInterface(bytes);
  std::vector<uint8_t> packet;
  AppendNgPacket(packet, UdpFrame());
  packet[packet.size() - 4] ^= 0x01;
  bytes.insert(bytes.end(), packet.begin(), packet.end());
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("trailing"), std::string::npos) << result.error;
}

TEST(PcapNgHardeningTest, CaplenBeyondItsBlockStopsCleanly) {
  std::vector<uint8_t> bytes = NgSection();
  AppendNgInterface(bytes);
  const size_t caplen_at = bytes.size() + 20;
  AppendNgPacket(bytes, UdpFrame());
  bytes[caplen_at] = 0xff;  // caplen claims more than the block holds
  bytes[caplen_at + 1] = 0xff;
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_FALSE(result.ok);
}

TEST(PcapNgHardeningTest, PacketsOnUnknownOrUnsupportedInterfacesAreSkipped) {
  std::vector<uint8_t> bytes = NgSection();
  AppendNgInterface(bytes);                       // iface 0: Ethernet
  AppendNgInterface(bytes, /*link_type=*/147);    // iface 1: unsupported
  AppendNgPacket(bytes, UdpFrame(), /*iface=*/1);  // unsupported linktype
  AppendNgPacket(bytes, UdpFrame(), /*iface=*/9);  // never described
  AppendNgPacket(bytes, UdpFrame(), /*iface=*/0);  // fine
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.yielded, 1u);
  EXPECT_EQ(result.stats.skipped_other, 2u);
}

TEST(PcapNgHardeningTest, UnknownBlockTypesAreSkippedByLength) {
  std::vector<uint8_t> bytes = NgSection();
  AppendNgInterface(bytes);
  Put32(bytes, 0x0000000b);  // some statistics-ish block
  Put32(bytes, 16);
  Put32(bytes, 0xdddddddd);
  Put32(bytes, 16);
  AppendNgPacket(bytes, UdpFrame());
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.yielded, 1u);
}

TEST(PcapNgHardeningTest, InterfaceOptionOverrunStopsCleanly) {
  std::vector<uint8_t> bytes = NgSection();
  // IDB whose option claims 200 bytes in a 12-byte option area.
  Put32(bytes, kBlockInterfaceDescription);
  Put32(bytes, 28);
  Put16(bytes, static_cast<uint16_t>(kLinkTypeEthernet));
  Put16(bytes, 0);
  Put32(bytes, 65535);
  Put16(bytes, kOptIfTsResol);
  Put16(bytes, 200);
  Put32(bytes, 0);
  Put32(bytes, 28);
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_FALSE(result.ok);
}

void AppendNgInterfaceWithTsResol(std::vector<uint8_t>& out, uint8_t tsresol) {
  Put32(out, kBlockInterfaceDescription);
  Put32(out, 28);
  Put16(out, static_cast<uint16_t>(kLinkTypeEthernet));
  Put16(out, 0);
  Put32(out, 65535);
  Put16(out, kOptIfTsResol);
  Put16(out, 1);
  out.push_back(tsresol);
  out.insert(out.end(), 3, 0);  // option padding
  Put32(out, 28);
}

TEST(PcapNgHardeningTest, AbsurdTimestampResolutionSkipsTheInterface) {
  // if_tsresol = 100 (10^-100 s ticks): the pow-10 divisor would overflow
  // uint64 to zero - a crafted capture must skip cleanly, not divide by it.
  std::vector<uint8_t> bytes = NgSection();
  AppendNgInterfaceWithTsResol(bytes, 100);
  AppendNgPacket(bytes, UdpFrame());
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_EQ(result.stats.skipped_other, 1u);
}

TEST(PcapNgHardeningTest, Pow2TimestampResolutionIsAccepted) {
  // 2^-10 s ticks (high bit set): well-defined 128-bit shift path.
  std::vector<uint8_t> bytes = NgSection();
  AppendNgInterfaceWithTsResol(bytes, 0x80 | 10);
  AppendNgPacket(bytes, UdpFrame());
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.yielded, 1u);
}

TEST(PcapNgHardeningTest, MisalignedTotalLengthStopsCleanly) {
  std::vector<uint8_t> bytes = NgSection();
  std::vector<uint8_t> block;
  AppendNgInterface(block);
  block[4] = 21;  // not a multiple of 4
  bytes.insert(bytes.end(), block.begin(), block.end());
  const DrainResult result = Drain(std::move(bytes));
  EXPECT_EQ(result.yielded, 0u);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace hk
