#include "sketch/lossy_counting.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace hk {
namespace {

TEST(LossyCountingTest, ExactWithinCapacity) {
  LossyCounting lc(100, 4);
  for (int i = 0; i < 50; ++i) {
    lc.Insert(1);
  }
  for (int i = 0; i < 20; ++i) {
    lc.Insert(2);
  }
  EXPECT_EQ(lc.EstimateSize(1), 50u);
  EXPECT_EQ(lc.EstimateSize(2), 20u);
  EXPECT_EQ(lc.EstimateSize(3), 0u);
}

TEST(LossyCountingTest, CapacityStrictlyEnforced) {
  LossyCounting lc(50, 4);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    lc.Insert(rng.NextBounded(5000) + 1);
    EXPECT_LE(lc.size(), 50u);
  }
}

TEST(LossyCountingTest, EpochAdvances) {
  LossyCounting lc(10, 4);
  EXPECT_EQ(lc.current_epoch(), 1u);
  for (int i = 0; i < 25; ++i) {
    lc.Insert(static_cast<FlowId>(i % 3) + 1);
  }
  EXPECT_EQ(lc.current_epoch(), 3u);  // two boundaries crossed at 10 and 20
}

TEST(LossyCountingTest, EstimateUpperBoundsTruth) {
  // The classic LC guarantee: true count <= count + delta for any tracked
  // flow (and pruned flows were below the epoch bound).
  LossyCounting lc(64, 4);
  std::map<FlowId, uint64_t> truth;
  Rng rng(7);
  for (int i = 0; i < 30000; ++i) {
    const FlowId id = (rng.NextBounded(100) < 60) ? rng.NextBounded(8) + 1
                                                  : rng.NextBounded(3000) + 10;
    lc.Insert(id);
    ++truth[id];
  }
  for (const auto& fc : lc.TopK(64)) {
    EXPECT_GE(fc.count, truth[fc.id]) << "flow " << fc.id;
  }
}

TEST(LossyCountingTest, HeavyFlowsSurvivePruning) {
  LossyCounting lc(32, 4);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    lc.Insert(1);  // persistent elephant
    lc.Insert(rng.NextBounded(4000) + 100);
  }
  const auto top = lc.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_GE(top[0].count, 20000u);
}

TEST(LossyCountingTest, MouseFlowsOverestimatedUnderTightMemory) {
  // Section II-B: the admit-all strategy drastically over-estimates mouse
  // flows admitted late.
  LossyCounting lc(16, 4);
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    lc.Insert(rng.NextBounded(2000) + 10);
  }
  lc.Insert(1);  // brand-new mouse flow
  const uint64_t est = lc.EstimateSize(1);
  EXPECT_GT(est, 100u) << "late flow should carry a large delta";
}

TEST(LossyCountingTest, MemoryAccountingAndName) {
  auto lc = LossyCounting::FromMemory(10 * 1024, 13);
  EXPECT_NEAR(static_cast<double>(lc->MemoryBytes()), 10 * 1024, 33);
  EXPECT_EQ(lc->name(), "Lossy-Counting");
}

}  // namespace
}  // namespace hk
