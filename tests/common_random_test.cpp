#include "common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hk {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, SeedsProduceDistinctStreams) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, SeedReproduces) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 50; ++i) {
    first.push_back(a.NextU64());
  }
  a.Seed(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextU64(), first[i]);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 12345ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(19);
  constexpr uint64_t kBound = 10;
  constexpr int kN = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.NextBounded(kBound)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / kBound, kN / kBound * 0.1);
  }
}

}  // namespace
}  // namespace hk
