// End-to-end reproduction smoke tests: all algorithms run head-to-head on a
// campus-like trace under the paper's memory accounting, and the qualitative
// orderings the paper reports must hold at test scale.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/hk_topk.h"
#include "metrics/accuracy.h"
#include "metrics/throughput.h"
#include "sketch/cm_sketch.h"
#include "sketch/cold_filter.h"
#include "sketch/count_sketch.h"
#include "sketch/counter_tree.h"
#include "sketch/css.h"
#include "sketch/elastic.h"
#include "sketch/frequent.h"
#include "sketch/heavy_guardian.h"
#include "sketch/lossy_counting.h"
#include "sketch/space_saving.h"
#include "trace/generators.h"
#include "trace/oracle.h"

namespace hk {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(MakeCampusTrace(400000, 2026));
    oracle_ = new Oracle(*trace_);
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete oracle_;
    trace_ = nullptr;
    oracle_ = nullptr;
  }

  static double RunPrecision(TopKAlgorithm& algo, size_t k) {
    for (const FlowId id : trace_->packets) {
      algo.Insert(id);
    }
    return EvaluateTopK(algo.TopK(k), *oracle_, k).precision;
  }

  static Trace* trace_;
  static Oracle* oracle_;
};

Trace* IntegrationFixture::trace_ = nullptr;
Oracle* IntegrationFixture::oracle_ = nullptr;

TEST_F(IntegrationFixture, HeavyKeeperDominatesBaselinesUnderTightMemory) {
  constexpr size_t kBudget = 20 * 1024;
  constexpr size_t kK = 100;
  constexpr size_t kKeyBytes = 13;

  auto hk = HeavyKeeperTopK<>::FromMemory(HkVersion::kParallel, kBudget, kK, kKeyBytes, 1);
  auto ss = SpaceSaving::FromMemory(kBudget, kKeyBytes);
  auto lc = LossyCounting::FromMemory(kBudget, kKeyBytes);
  auto css = Css::FromMemory(kBudget, 1);
  auto cm = CmTopK::FromMemory(kBudget, kK, kKeyBytes, 1);

  const double p_hk = RunPrecision(*hk, kK);
  const double p_ss = RunPrecision(*ss, kK);
  const double p_lc = RunPrecision(*lc, kK);
  const double p_css = RunPrecision(*css, kK);
  const double p_cm = RunPrecision(*cm, kK);

  // Figure 4's ordering: HK >= everything. At test scale (400k packets,
  // 40k flows) the compact CSS can also saturate, so it is allowed to tie;
  // the pointer-based admit-all baselines must lose outright.
  EXPECT_GE(p_hk, 0.90) << "HeavyKeeper precision collapsed";
  EXPECT_GE(p_hk, p_cm);
  EXPECT_GE(p_hk + 1e-9, p_css);
  EXPECT_GT(p_hk, p_lc);
  EXPECT_GT(p_hk, p_ss);
}

TEST_F(IntegrationFixture, AreOrderingMatchesFigure9) {
  // The paper's regime is very tight memory relative to the flow count
  // (10-50 KB for 1M flows). The equivalent stress point at test scale
  // (40k flows) is ~8 KB, where Space-Saving's admit-all churn inflates
  // every tracked count while HeavyKeeper's decay keeps elephants exact.
  constexpr size_t kBudget = 8 * 1024;
  constexpr size_t kK = 100;
  auto hk = HeavyKeeperTopK<>::FromMemory(HkVersion::kParallel, kBudget, kK, 13, 2);
  auto ss = SpaceSaving::FromMemory(kBudget, 13);
  for (const FlowId id : trace_->packets) {
    hk->Insert(id);
    ss->Insert(id);
  }
  const double are_hk = EvaluateTopK(hk->TopK(kK), *oracle_, kK).are;
  const double are_ss = EvaluateTopK(ss->TopK(kK), *oracle_, kK).are;
  EXPECT_LT(are_hk, 0.25);
  EXPECT_LT(are_hk, are_ss);
}

TEST_F(IntegrationFixture, EveryAlgorithmRespectsItsMemoryBudget) {
  constexpr size_t kBudget = 25 * 1024;
  std::vector<std::unique_ptr<TopKAlgorithm>> algos;
  algos.push_back(HeavyKeeperTopK<>::FromMemory(HkVersion::kParallel, kBudget, 100, 13, 1));
  algos.push_back(HeavyKeeperTopK<>::FromMemory(HkVersion::kMinimum, kBudget, 100, 13, 1));
  algos.push_back(SpaceSaving::FromMemory(kBudget, 13));
  algos.push_back(LossyCounting::FromMemory(kBudget, 13));
  algos.push_back(Frequent::FromMemory(kBudget, 13));
  algos.push_back(Css::FromMemory(kBudget, 1));
  algos.push_back(CmTopK::FromMemory(kBudget, 100, 13, 1));
  algos.push_back(CountSketchTopK::FromMemory(kBudget, 100, 13, 1));
  algos.push_back(ElasticSketch::FromMemory(kBudget, 13, 1));
  algos.push_back(ColdFilter::FromMemory(kBudget, 13, 1));
  algos.push_back(CounterTree::FromMemory(kBudget, 1));
  algos.push_back(HeavyGuardian::FromMemory(kBudget, 13, 1));
  for (const auto& algo : algos) {
    EXPECT_LE(algo->MemoryBytes(), kBudget + 64) << algo->name();
    EXPECT_GE(algo->MemoryBytes(), kBudget / 2) << algo->name() << " wastes its budget";
  }
}

TEST_F(IntegrationFixture, AllAlgorithmsProduceNonEmptyTopK) {
  constexpr size_t kBudget = 25 * 1024;
  std::vector<std::unique_ptr<TopKAlgorithm>> algos;
  algos.push_back(HeavyKeeperTopK<>::FromMemory(HkVersion::kBasic, kBudget, 50, 13, 1));
  algos.push_back(SpaceSaving::FromMemory(kBudget, 13));
  algos.push_back(LossyCounting::FromMemory(kBudget, 13));
  algos.push_back(Frequent::FromMemory(kBudget, 13));
  algos.push_back(Css::FromMemory(kBudget, 1));
  algos.push_back(CmTopK::FromMemory(kBudget, 50, 13, 1));
  algos.push_back(CountSketchTopK::FromMemory(kBudget, 50, 13, 1));
  algos.push_back(ElasticSketch::FromMemory(kBudget, 13, 1));
  algos.push_back(ColdFilter::FromMemory(kBudget, 13, 1));
  algos.push_back(CounterTree::FromMemory(kBudget, 1));
  algos.push_back(HeavyGuardian::FromMemory(kBudget, 13, 1));

  for (const auto& algo : algos) {
    for (const FlowId id : trace_->packets) {
      algo->Insert(id);
    }
    const auto top = algo->TopK(50);
    // Cold Filter only reports flows that saturate both filter layers
    // (> 255 packets), which at test scale is close to 50 flows; everything
    // else must fill the report exactly.
    EXPECT_GE(top.size(), 40u) << algo->name();
    EXPECT_LE(top.size(), 50u) << algo->name();
    // Reports must be sorted descending.
    for (size_t i = 1; i < top.size(); ++i) {
      EXPECT_LE(top[i].count, top[i - 1].count) << algo->name();
    }
  }
}

TEST_F(IntegrationFixture, DeterministicEndToEnd) {
  constexpr size_t kBudget = 15 * 1024;
  auto a = HeavyKeeperTopK<>::FromMemory(HkVersion::kMinimum, kBudget, 100, 13, 42);
  auto b = HeavyKeeperTopK<>::FromMemory(HkVersion::kMinimum, kBudget, 100, 13, 42);
  for (const FlowId id : trace_->packets) {
    a->Insert(id);
    b->Insert(id);
  }
  EXPECT_EQ(a->TopK(100), b->TopK(100));
}

TEST_F(IntegrationFixture, Figure10LargeMemoryConvergence) {
  // With megabyte-scale memory every reasonable algorithm approaches
  // perfect precision (Figure 10).
  constexpr size_t kBudget = 1024 * 1024;
  constexpr size_t kK = 100;
  auto hk = HeavyKeeperTopK<>::FromMemory(HkVersion::kParallel, kBudget, kK, 13, 3);
  auto ss = SpaceSaving::FromMemory(kBudget, 13);
  const double p_hk = RunPrecision(*hk, kK);
  const double p_ss = RunPrecision(*ss, kK);
  EXPECT_GE(p_hk, 0.99);
  EXPECT_GE(p_ss, 0.95);
}

}  // namespace
}  // namespace hk
