#include "trace/oracle.h"

#include <gtest/gtest.h>

#include "trace/generators.h"

namespace hk {
namespace {

TEST(OracleTest, CountsHandBuiltStream) {
  Oracle oracle;
  oracle.Add(1);
  oracle.Add(2);
  oracle.Add(1);
  oracle.Add(3, 5);
  EXPECT_EQ(oracle.Count(1), 2u);
  EXPECT_EQ(oracle.Count(2), 1u);
  EXPECT_EQ(oracle.Count(3), 5u);
  EXPECT_EQ(oracle.Count(99), 0u);
  EXPECT_EQ(oracle.num_flows(), 3u);
}

TEST(OracleTest, TopKOrdersByCountThenId) {
  Oracle oracle;
  oracle.Add(10, 7);
  oracle.Add(20, 7);
  oracle.Add(30, 9);
  oracle.Add(40, 1);
  const auto top = oracle.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 30u);
  EXPECT_EQ(top[1].id, 10u);  // tie broken by id
  EXPECT_EQ(top[2].id, 20u);
}

TEST(OracleTest, TopKClampsToFlowCount) {
  Oracle oracle;
  oracle.Add(1);
  oracle.Add(2);
  EXPECT_EQ(oracle.TopK(10).size(), 2u);
}

TEST(OracleTest, KthSize) {
  Oracle oracle;
  oracle.Add(1, 100);
  oracle.Add(2, 50);
  oracle.Add(3, 25);
  EXPECT_EQ(oracle.KthSize(1), 100u);
  EXPECT_EQ(oracle.KthSize(2), 50u);
  EXPECT_EQ(oracle.KthSize(3), 25u);
  EXPECT_EQ(oracle.KthSize(4), 0u);  // fewer than k flows
  EXPECT_EQ(oracle.KthSize(0), 0u);
}

TEST(OracleTest, TraceConstructorMatchesManualCount) {
  const Trace trace = MakeCampusTrace(30000, 17);
  Oracle oracle(trace);
  EXPECT_EQ(oracle.total_packets(), trace.num_packets());
  EXPECT_EQ(oracle.num_flows(), trace.num_flows);

  Oracle manual;
  for (const FlowId id : trace.packets) {
    manual.Add(id);
  }
  EXPECT_EQ(manual.counts(), oracle.counts());
}

TEST(OracleTest, TopKConsistentWithKthSize) {
  const Trace trace = MakeCaidaTrace(30000, 23);
  Oracle oracle(trace);
  for (size_t k : {1u, 10u, 100u}) {
    const auto top = oracle.TopK(k);
    ASSERT_EQ(top.size(), k);
    EXPECT_EQ(top.back().count, oracle.KthSize(k));
    for (size_t i = 1; i < top.size(); ++i) {
      EXPECT_GE(top[i - 1].count, top[i].count);
    }
  }
}

TEST(OracleTest, AddTraceAccumulates) {
  const Trace a = MakeCampusTrace(10000, 1);
  Oracle oracle;
  oracle.AddTrace(a);
  oracle.AddTrace(a);
  EXPECT_EQ(oracle.total_packets(), 2 * a.num_packets());
  const auto top = oracle.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  Oracle single(a);
  EXPECT_EQ(top[0].count, 2 * single.TopK(1)[0].count);
}

}  // namespace
}  // namespace hk
