#include "sketch/heavy_guardian.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hk {
namespace {

TEST(HeavyGuardianTest, ResidentFlowCounts) {
  HeavyGuardian hg(64, 8, 4, 1.08, 1);
  for (int i = 0; i < 300; ++i) {
    hg.Insert(42);
  }
  EXPECT_EQ(hg.EstimateSize(42), 300u);
  EXPECT_EQ(hg.EstimateSize(1), 0u);
}

TEST(HeavyGuardianTest, EmptySlotClaimedBeforeDecay) {
  HeavyGuardian hg(1, 4, 4, 1.08, 2);
  for (FlowId id = 1; id <= 4; ++id) {
    hg.Insert(id);
  }
  // All four slots taken, one each.
  for (FlowId id = 1; id <= 4; ++id) {
    EXPECT_EQ(hg.EstimateSize(id), 1u);
  }
}

TEST(HeavyGuardianTest, WeakestSlotDecaysAndIsReplaced) {
  HeavyGuardian hg(1, 2, 4, 1.08, 3);
  for (int i = 0; i < 100; ++i) {
    hg.Insert(1);  // strong resident
  }
  hg.Insert(2);  // weak resident (count 1)
  // Hammer with a new flow: the weak slot decays (b^-1 ~ 0.93) and flips.
  for (int i = 0; i < 50; ++i) {
    hg.Insert(3);
  }
  EXPECT_GE(hg.EstimateSize(3), 1u);
  EXPECT_GE(hg.EstimateSize(1), 100u);  // elephant untouched
}

TEST(HeavyGuardianTest, FindsPlantedElephants) {
  auto hg = HeavyGuardian::FromMemory(16 * 1024, 4, 5);
  Rng rng(7);
  for (int rep = 0; rep < 500; ++rep) {
    for (FlowId e = 1; e <= 8; ++e) {
      hg->Insert(e);
    }
    for (int m = 0; m < 20; ++m) {
      hg->Insert(1000 + rng.NextBounded(5000));
    }
  }
  const auto top = hg->TopK(8);
  ASSERT_EQ(top.size(), 8u);
  int planted = 0;
  for (const auto& fc : top) {
    if (fc.id <= 8) {
      ++planted;
    }
  }
  EXPECT_GE(planted, 7);
}

TEST(HeavyGuardianTest, NeverOverestimatesResidents) {
  // A resident's counter only increments on its own packets, so the
  // estimate is <= truth (decay may push it below).
  HeavyGuardian hg(32, 4, 4, 1.08, 9);
  Rng rng(11);
  std::unordered_map<FlowId, uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    const FlowId id = rng.NextBounded(100) + 1;
    hg.Insert(id);
    ++truth[id];
  }
  for (const auto& fc : hg.TopK(1000)) {
    EXPECT_LE(fc.count, truth[fc.id]) << "flow " << fc.id;
  }
}

TEST(HeavyGuardianTest, MemoryAndName) {
  auto hg = HeavyGuardian::FromMemory(8 * 1024, 8, 1);
  EXPECT_LE(hg->MemoryBytes(), 8u * 1024 + 96);
  EXPECT_EQ(hg->name(), "HeavyGuardian");
}

}  // namespace
}  // namespace hk
