#include "sketch/cold_filter.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace hk {
namespace {

TEST(ColdFilterTest, LightFlowsAbsorbedByLayer1) {
  ColdFilter cf(4096, 2048, 64, 4, 1);
  for (FlowId id = 1; id <= 100; ++id) {
    for (int i = 0; i < 5; ++i) {  // well under T1 = 15
      cf.Insert(id);
    }
  }
  for (FlowId id = 1; id <= 100; ++id) {
    EXPECT_LE(cf.EstimateSize(id), 15u) << "flow " << id;
    EXPECT_GE(cf.EstimateSize(id), 5u) << "flow " << id;
  }
  // Nothing should have reached the backend.
  EXPECT_TRUE(cf.TopK(10).empty());
}

TEST(ColdFilterTest, HeavyFlowReachesBackend) {
  ColdFilter cf(4096, 2048, 64, 4, 2);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    cf.Insert(42);
  }
  const auto top = cf.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 42u);
  // Estimate = T1 + T2 + backend count = exactly n for a lone flow.
  EXPECT_EQ(top[0].count, static_cast<uint64_t>(n));
  EXPECT_EQ(cf.EstimateSize(42), static_cast<uint64_t>(n));
}

TEST(ColdFilterTest, EstimateTransitionsAcrossLayers) {
  ColdFilter cf(4096, 2048, 64, 4, 3);
  // 10 packets: still in L1.
  for (int i = 0; i < 10; ++i) {
    cf.Insert(7);
  }
  EXPECT_EQ(cf.EstimateSize(7), 10u);
  // 100 more: L1 saturated (15), the rest in L2.
  for (int i = 0; i < 100; ++i) {
    cf.Insert(7);
  }
  EXPECT_EQ(cf.EstimateSize(7), 110u);
}

TEST(ColdFilterTest, MiceDoNotPolluteBackend) {
  auto cf = ColdFilter::FromMemory(32 * 1024, 4, 5);
  Rng rng(7);
  // 20000 distinct mice (1-2 packets each) + 5 elephants.
  for (int i = 0; i < 20000; ++i) {
    cf->Insert(100000 + rng.NextBounded(20000));
    if (i % 4 == 0) {
      for (FlowId e = 1; e <= 5; ++e) {
        cf->Insert(e);
      }
    }
  }
  const auto top = cf->TopK(5);
  ASSERT_EQ(top.size(), 5u);
  for (const auto& fc : top) {
    EXPECT_LE(fc.id, 5u) << "mouse leaked into backend top-k";
  }
}

TEST(ColdFilterTest, MemoryBudgetAndName) {
  const size_t budget = 40 * 1024;
  auto cf = ColdFilter::FromMemory(budget, 13, 1);
  EXPECT_LE(cf->MemoryBytes(), budget + 40);
  EXPECT_GT(cf->MemoryBytes(), budget * 8 / 10);
  EXPECT_EQ(cf->name(), "Cold-Filter");
}

TEST(ColdFilterTest, ConservativeUpdateKeepsMinimumTight) {
  // With conservative increments, a flow's L1 minimum equals its own count
  // while no collisions occur.
  ColdFilter cf(1 << 16, 1 << 14, 64, 4, 11);
  for (int i = 0; i < 12; ++i) {
    cf.Insert(123456);
  }
  EXPECT_EQ(cf.EstimateSize(123456), 12u);
}

}  // namespace
}  // namespace hk
