// Tests for the spec-string sketch registry (sketch/registry.h): every
// contender constructs through one parser, canonical name() strings round-
// trip, and malformed specs are rejected loudly.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sketch/registry.h"
#include "trace/generators.h"

namespace hk {
namespace {

// The paper's contender set plus the library extensions: all 17 public
// registry names (16 canonical + the "HK" alias).
const std::vector<std::string>& AllNames() {
  static const std::vector<std::string> names = {
      "HK",      "HK-Parallel", "HK-Minimum",  "HK-Basic",      "SS",
      "LC",      "CSS",         "CM",          "CountSketch",   "Frequent",
      "Elastic", "ColdFilter",  "CounterTree", "HeavyGuardian", "Sharded",
      "Concurrent", "Window"};
  return names;
}

SketchDefaults SmallDefaults() {
  SketchDefaults d;
  d.memory_bytes = 20 * 1024;
  d.k = 50;
  d.key_kind = KeyKind::kFiveTuple13B;
  d.seed = 1;
  return d;
}

class RegistrySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySweep, ConstructsFromSpecString) {
  auto algo = MakeSketch(GetParam(), SmallDefaults());
  ASSERT_NE(algo, nullptr);
  EXPECT_LE(algo->MemoryBytes(), SmallDefaults().memory_bytes + 64) << GetParam();
  EXPECT_FALSE(algo->name().empty());
}

TEST_P(RegistrySweep, NameRoundTripsThroughParser) {
  const SketchDefaults defaults = SmallDefaults();
  auto a = MakeSketch(GetParam(), defaults);
  // name() must itself be a valid spec reconstructing an equivalent
  // configuration under the same context defaults.
  auto b = MakeSketch(a->name(), defaults);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->name(), b->name());
  EXPECT_EQ(a->MemoryBytes(), b->MemoryBytes());

  // Equivalent config + equal seeds => identical behaviour.
  const Trace trace = MakeCampusTrace(30000, 5);
  a->InsertBatch(trace.packets);
  b->InsertBatch(trace.packets);
  EXPECT_EQ(a->TopK(20), b->TopK(20));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RegistrySweep, ::testing::ValuesIn(AllNames()),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return s;
                         });

TEST(RegistryTest, RegisteredSketchesAreSortedCanonicalNames) {
  const auto names = RegisteredSketches();
  EXPECT_EQ(names.size(), 16u);  // aliases ("HK", display names) excluded
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& name : AllNames()) {
    EXPECT_FALSE(ResolveSketchName(name).empty()) << name;
  }
  EXPECT_EQ(ResolveSketchName("HK"), "HK-Parallel");
  EXPECT_EQ(ResolveSketchName("HeavyKeeper-Minimum"), "HK-Minimum");
  EXPECT_EQ(ResolveSketchName("Space-Saving"), "SS");
  EXPECT_EQ(ResolveSketchName("NotARealSketch"), "");
}

TEST(RegistryTest, AlgorithmParamsOverrideAndRoundTrip) {
  const SketchDefaults defaults = SmallDefaults();
  auto a = MakeSketch("HK-Minimum:d=3,b=1.05,fp=12,cb=32,decay=poly", defaults);
  EXPECT_EQ(a->name(), "HeavyKeeper-Minimum:d=3,b=1.05,fp=12,cb=32,decay=poly");
  auto b = MakeSketch(a->name(), defaults);
  EXPECT_EQ(a->name(), b->name());
  EXPECT_EQ(a->MemoryBytes(), b->MemoryBytes());

  auto cm = MakeSketch("CM:d=4", defaults);
  EXPECT_EQ(cm->name(), "CM-Sketch:d=4");
  EXPECT_EQ(MakeSketch(cm->name(), defaults)->name(), "CM-Sketch:d=4");
}

TEST(RegistryTest, GreedyInnerKeySwallowsTheRestOfTheSpec) {
  const SketchDefaults defaults = SmallDefaults();
  // The inner value keeps its own commas and colons: b=1.05 belongs to the
  // inner HeavyKeeper, not to Sharded.
  auto a = MakeSketch("Sharded:n=2,inner=HK-Minimum:d=3,b=1.05", defaults);
  EXPECT_EQ(a->name(), "Sharded:n=2,inner=HeavyKeeper-Minimum:d=3,b=1.05");
  auto b = MakeSketch(a->name(), defaults);
  EXPECT_EQ(a->name(), b->name());
  EXPECT_EQ(a->MemoryBytes(), b->MemoryBytes());

  // Keys after the greedy key are part of its value, so a Sharded key
  // "misplaced" after inner= lands in the inner parser and is rejected
  // there (HeavyKeeper has no n=).
  EXPECT_THROW(MakeSketch("Sharded:inner=HK-Minimum,n=4", defaults), std::invalid_argument);

  // Threaded specs round-trip too (n stays explicit, options canonical).
  auto threaded = MakeSketch("Sharded:n=4,threads=1,burst=64,inner=HK-Parallel", defaults);
  EXPECT_EQ(threaded->name(), "Sharded:n=4,threads=1,burst=64,inner=HeavyKeeper-Parallel");
  EXPECT_EQ(MakeSketch(threaded->name(), defaults)->name(), threaded->name());

  // Defaults: 8 synchronous HK-Minimum shards.
  auto plain = MakeSketch("Sharded", defaults);
  EXPECT_EQ(plain->name(), "Sharded:n=8,inner=HeavyKeeper-Minimum");
}

TEST(RegistryTest, CommonKeysOverrideContextDefaults) {
  const SketchDefaults defaults = SmallDefaults();
  // mem= (with unit suffix) replaces the context budget.
  auto ss_small = MakeSketch("SS:mem=8kb", defaults);
  auto ss_large = MakeSketch("SS", defaults);
  EXPECT_LT(ss_small->MemoryBytes(), ss_large->MemoryBytes());
  EXPECT_LE(ss_small->MemoryBytes(), 8 * 1024 + 64);

  // key= switches the accounting width, shrinking entry counts.
  auto ss4 = MakeSketch("SS:key=4", defaults);
  auto ss13 = MakeSketch("SS:key=13", defaults);
  EXPECT_LE(ss4->MemoryBytes(), ss13->MemoryBytes() + 64);

  // Different seeds change hashing behaviour but not accounting.
  auto hk1 = MakeSketch("HK-Minimum:seed=1", defaults);
  auto hk2 = MakeSketch("HK-Minimum:seed=2", defaults);
  EXPECT_EQ(hk1->MemoryBytes(), hk2->MemoryBytes());
}

TEST(RegistryTest, RejectsUnknownNamesAndKeys) {
  EXPECT_THROW(MakeSketch("NotARealSketch"), std::invalid_argument);
  // Unknown algorithm-specific key.
  EXPECT_THROW(MakeSketch("SS:d=2"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:width=12"), std::invalid_argument);
  // Malformed params.
  EXPECT_THROW(MakeSketch("HK-Minimum:d"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:=3"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:d=abc"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:b=fast"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:decay=linear"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:wdecay=fast"), std::invalid_argument);
  // The collapsed weighted path exists for the Minimum discipline only;
  // elsewhere the key would be a silent no-op, so it is rejected.
  EXPECT_THROW(MakeSketch("HK-Parallel:wdecay=collapsed"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Basic:wdecay=collapsed"), std::invalid_argument);
  EXPECT_NO_THROW(MakeSketch("HK-Minimum:wdecay=collapsed"));
  EXPECT_NO_THROW(MakeSketch("HK-Parallel:wdecay=replay"));
  EXPECT_THROW(MakeSketch("HK-Minimum:d=2,d=3"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("SS:key=5"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("SS:mem=10gbx"), std::invalid_argument);
}

TEST(RegistryTest, RejectsOutOfRangeAndNegativeValues) {
  // strtoull would wrap "-1" into a huge unsigned; the parser must reject
  // the sign outright, and degenerate geometries must not divide by zero.
  EXPECT_THROW(MakeSketch("CM:d=-1"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("CM:d=0"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("CountSketch:d=0"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:d=0"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:d=9"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:fp=0"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:fp=33"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("HK-Minimum:cb=0"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("SS:mem=-1"), std::invalid_argument);
  EXPECT_THROW(MakeSketch("SS:seed=-7"), std::invalid_argument);
}

}  // namespace
}  // namespace hk
