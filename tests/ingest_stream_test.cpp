// Streaming-mode PcapReader (the hk_serve ingest contract): pulling a
// capture through a ByteSource in arbitrarily small chunks must yield the
// bit-identical packet stream the slurp path produces, for both container
// formats, on files, pipes, and in-memory buffers. Plus the new framings
// and failure modes: Linux cooked capture (SLL v1/v2, the `tcpdump -i
// any` linktype), gzip detection with a targeted error, truncated streams,
// and the no-rewind rule.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ingest/byte_source.h"
#include "ingest/capture_synth.h"
#include "ingest/pcap_reader.h"
#include "ingest/pcap_writer.h"
#include "trace/generators.h"
#include "trace/oracle.h"

#ifndef HK_TEST_DATA_DIR
#define HK_TEST_DATA_DIR "tests/data"
#endif

namespace hk {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> data(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
  return data;
}

struct StreamResult {
  std::vector<FlowId> ids;
  std::vector<uint64_t> timestamps;
  IngestStats stats;
  bool ok = false;
  std::string error;
};

StreamResult Drain(PcapReader& reader) {
  StreamResult result;
  PacketRecord record;
  while (reader.Next(&record)) {
    result.ids.push_back(record.id);
    result.timestamps.push_back(record.timestamp_ns);
  }
  result.stats = reader.stats();
  result.ok = reader.ok();
  result.error = reader.error();
  return result;
}

std::string MakeCapture(PcapFormat format, const std::string& name, uint32_t packets = 1200) {
  const std::string path = TempPath(name);
  CaptureSynthOptions options;
  options.file.format = format;
  options.vlan_every = 7;
  options.ipv6_every = 5;
  ZipfTraceConfig config = CampusConfig(packets, 31);
  const Trace trace = SynthesizeCapture(config, path, options);
  EXPECT_GT(trace.num_packets(), 0u);
  return path;
}

class StreamEquivalenceTest : public ::testing::TestWithParam<PcapFormat> {};

TEST_P(StreamEquivalenceTest, ChunkedSourceMatchesSlurpAtEveryChunkSize) {
  const std::string path =
      MakeCapture(GetParam(), GetParam() == PcapFormat::kPcap ? "st_eq.pcap" : "st_eq.pcapng");
  PcapReader slurp;
  ASSERT_TRUE(slurp.Open(path)) << slurp.error();
  const StreamResult expect = Drain(slurp);
  ASSERT_TRUE(expect.ok) << expect.error;
  ASSERT_GT(expect.ids.size(), 0u);

  const std::vector<uint8_t> bytes = Slurp(path);
  for (const size_t chunk : {size_t{1}, size_t{3}, size_t{7}, size_t{64}, size_t{4096}}) {
    PcapReader reader;
    ASSERT_TRUE(reader.OpenStream(MakeBufferByteSource(bytes, chunk)))
        << "chunk " << chunk << ": " << reader.error();
    EXPECT_TRUE(reader.streaming());
    const StreamResult got = Drain(reader);
    EXPECT_TRUE(got.ok) << "chunk " << chunk << ": " << got.error;
    EXPECT_EQ(got.ids, expect.ids) << "chunk " << chunk;
    EXPECT_EQ(got.timestamps, expect.timestamps) << "chunk " << chunk;
    EXPECT_EQ(got.stats.packets, expect.stats.packets);
    EXPECT_EQ(got.stats.wire_bytes, expect.stats.wire_bytes);
  }
}

TEST_P(StreamEquivalenceTest, FileSourceMatchesSlurp) {
  const std::string path =
      MakeCapture(GetParam(), GetParam() == PcapFormat::kPcap ? "st_f.pcap" : "st_f.pcapng");
  PcapReader slurp;
  ASSERT_TRUE(slurp.Open(path)) << slurp.error();
  const StreamResult expect = Drain(slurp);

  PcapReader reader;
  ASSERT_TRUE(reader.OpenStream(MakeFileByteSource(path))) << reader.error();
  const StreamResult got = Drain(reader);
  EXPECT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.ids, expect.ids);
  EXPECT_EQ(got.timestamps, expect.timestamps);
}

INSTANTIATE_TEST_SUITE_P(BothFormats, StreamEquivalenceTest,
                         ::testing::Values(PcapFormat::kPcap, PcapFormat::kPcapNg),
                         [](const auto& info) {
                           return info.param == PcapFormat::kPcap ? "pcap" : "pcapng";
                         });

TEST(StreamPipeTest, ReadsAcrossAPipeFedInSmallBursts) {
  // The daemon's stdin/socket shape: a writer thread dribbles the capture
  // through a pipe while the reader blocks in Refill.
  const std::string path = MakeCapture(PcapFormat::kPcap, "st_pipe.pcap", 600);
  PcapReader slurp;
  ASSERT_TRUE(slurp.Open(path)) << slurp.error();
  const StreamResult expect = Drain(slurp);

  const std::vector<uint8_t> bytes = Slurp(path);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::thread feeder([&bytes, fd = fds[1]] {
    size_t pos = 0;
    while (pos < bytes.size()) {
      const size_t n = std::min<size_t>(1024, bytes.size() - pos);
      const ssize_t wrote = ::write(fd, bytes.data() + pos, n);
      ASSERT_GT(wrote, 0);
      pos += static_cast<size_t>(wrote);
    }
    ::close(fd);
  });

  PcapReader reader;
  ASSERT_TRUE(reader.OpenStream(MakeFdByteSource(fds[0], /*own_fd=*/true)))
      << reader.error();
  const StreamResult got = Drain(reader);
  feeder.join();
  EXPECT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.ids, expect.ids);
}

TEST(StreamRewindTest, RewindIsRefusedInStreamingMode) {
  const std::string path = MakeCapture(PcapFormat::kPcap, "st_rw.pcap", 100);
  PcapReader reader;
  ASSERT_TRUE(reader.OpenStream(MakeFileByteSource(path))) << reader.error();
  PacketRecord record;
  ASSERT_TRUE(reader.Next(&record));
  reader.Rewind();
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("rewind"), std::string::npos) << reader.error();
}

TEST(StreamTruncationTest, StreamEndingMidRecordIsMalformedNotEof) {
  const std::string path = MakeCapture(PcapFormat::kPcap, "st_cut.pcap", 200);
  std::vector<uint8_t> bytes = Slurp(path);
  bytes.resize(bytes.size() - 5);  // cut inside the final record's payload

  PcapReader reader;
  ASSERT_TRUE(reader.OpenStream(MakeBufferByteSource(bytes, 11)));
  const StreamResult got = Drain(reader);
  EXPECT_FALSE(got.ok);
  EXPECT_NE(got.error.find("overruns"), std::string::npos) << got.error;
  EXPECT_GT(got.stats.packets, 0u);  // everything before the cut was yielded
}

TEST(StreamOpenTest, MissingFileAndNullSourceFailCleanly) {
  PcapReader reader;
  EXPECT_FALSE(reader.OpenStream(MakeFileByteSource(TempPath("st_nope.pcap"))));
  EXPECT_FALSE(reader.ok());
  PcapReader null_reader;
  EXPECT_FALSE(null_reader.OpenStream(nullptr));
}

TEST(GzipTest, GzipMagicIsRefusedWithATargetedError) {
  // A gzip stream: magic 1f 8b, deflate method, then whatever - the reader
  // must name the remedy instead of reporting a generic bad magic.
  std::vector<uint8_t> gz = {0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03};
  gz.resize(64, 0);

  PcapReader buffered;
  EXPECT_FALSE(buffered.OpenBuffer(gz));
  EXPECT_NE(buffered.error().find("gzip"), std::string::npos) << buffered.error();
  EXPECT_NE(buffered.error().find("zcat"), std::string::npos) << buffered.error();

  const std::string path = TempPath("st_gz.pcap.gz");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(gz.data(), 1, gz.size(), f), gz.size());
  std::fclose(f);
  PcapReader from_file;
  EXPECT_FALSE(from_file.Open(path));
  EXPECT_NE(from_file.error().find("zcat"), std::string::npos) << from_file.error();

  PcapReader streamed;
  EXPECT_FALSE(streamed.OpenStream(MakeBufferByteSource(gz, 1)));
  EXPECT_NE(streamed.error().find("zcat"), std::string::npos) << streamed.error();
}

// ---------------------------------------------------------------------------
// Linux cooked capture (SLL v1 linktype 113, SLL2 linktype 276).

class SllRoundTripTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SllRoundTripTest, CookedCaptureCountsMatchTheOracle) {
  const uint32_t link_type = GetParam();
  const std::string path = TempPath("st_sll_" + std::to_string(link_type) + ".pcap");
  CaptureSynthOptions options;
  options.file.link_type = link_type;
  options.vlan_every = 7;  // VLAN strip must compose with the cooked header
  options.ipv6_every = 5;
  ZipfTraceConfig config = CampusConfig(1500, 31);
  const Trace trace = SynthesizeCapture(config, path, options);
  ASSERT_GT(trace.num_packets(), 0u);

  PcapReader reader(PcapKeyPolicy::kFiveTuple);
  ASSERT_TRUE(reader.Open(path)) << reader.error();
  std::unordered_map<FlowId, uint64_t> counts;
  PacketRecord record;
  while (reader.Next(&record)) {
    ++counts[record.id];
  }
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.stats().packets, trace.num_packets());
  const Oracle oracle(trace);
  ASSERT_EQ(oracle.num_flows(), counts.size());
  for (const auto& [id, count] : oracle.counts()) {
    EXPECT_EQ(counts[id], count) << "flow " << id;
  }
}

TEST_P(SllRoundTripTest, CookedPcapngParsesToo) {
  const uint32_t link_type = GetParam();
  const std::string path = TempPath("st_sllng_" + std::to_string(link_type) + ".pcapng");
  CaptureSynthOptions options;
  options.file.format = PcapFormat::kPcapNg;
  options.file.link_type = link_type;
  ZipfTraceConfig config = CampusConfig(400, 31);
  const Trace trace = SynthesizeCapture(config, path, options);
  ASSERT_GT(trace.num_packets(), 0u);

  PcapReader reader;
  ASSERT_TRUE(reader.Open(path)) << reader.error();
  const StreamResult got = Drain(reader);
  EXPECT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.stats.packets, trace.num_packets());
}

INSTANTIATE_TEST_SUITE_P(BothVersions, SllRoundTripTest,
                         ::testing::Values(pcapfmt::kLinkTypeSll, pcapfmt::kLinkTypeSll2),
                         [](const auto& info) {
                           return info.param == pcapfmt::kLinkTypeSll ? "sll" : "sll2";
                         });

TEST(SllTruncationTest, ShortCookedHeaderIsSkippedNotParsed) {
  // Hand-build a classic pcap (SLL linktype) holding one 10-byte record -
  // shorter than the 16-byte cooked header - and one valid SLL frame.
  const std::string path = TempPath("st_sll_cut.pcap");
  {
    PcapWriterOptions options;
    options.link_type = pcapfmt::kLinkTypeSll;
    PcapWriter writer;
    ASSERT_TRUE(writer.Open(path, options));
    FiveTuple t;
    t.src_ip = 0x0a000001;
    t.dst_ip = 0x0a000002;
    t.src_port = 1234;
    t.dst_port = 80;
    t.proto = 6;
    ASSERT_TRUE(writer.Write(t, 1000, 100));
    ASSERT_TRUE(writer.Close());
  }
  std::vector<uint8_t> bytes = Slurp(path);
  // Append a record header claiming caplen 10 + 10 junk bytes.
  const uint8_t short_rec[16] = {0, 0, 0, 0, 0, 0, 0, 0, 10, 0, 0, 0, 10, 0, 0, 0};
  bytes.insert(bytes.end(), short_rec, short_rec + 16);
  bytes.resize(bytes.size() + 10, 0xee);

  PcapReader reader;
  ASSERT_TRUE(reader.OpenBuffer(bytes));
  const StreamResult got = Drain(reader);
  EXPECT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.stats.packets, 1u);
  EXPECT_EQ(got.stats.skipped_truncated, 1u);
}

TEST(SllFixtureTest, CommittedCookedFixtureParses) {
  const std::string path = std::string(HK_TEST_DATA_DIR) + "/fixture_sll.pcap";
  PcapReader reader(PcapKeyPolicy::kFiveTuple);
  ASSERT_TRUE(reader.Open(path)) << reader.error();
  const StreamResult got = Drain(reader);
  EXPECT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.stats.packets, 800u);
  EXPECT_EQ(got.stats.skipped_non_ip + got.stats.skipped_truncated + got.stats.skipped_other,
            0u);
}

}  // namespace
}  // namespace hk
