// Differential tests for the shared-slab concurrent mode under real
// multi-threaded insertion: N Inserter threads split a trace, and the
// quiesced report must still clear the sequential harness's recall floors
// against the exact oracle - on the Zipf workload, the mouse-flood
// adversarial workload, and a skewed-key workload crafted so every
// elephant lands in ONE partition of a 4-way ShardPartitioner (the
// workload the shared slab exists for). A separate suite exercises
// Snapshot(kRelaxed) while inserters are running: reports must be
// duplicate-free, whole-word (never torn), and - with collision-free
// fingerprints - never above the truth (Theorem 2 survives concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/hash.h"
#include "concurrent/concurrent_topk.h"
#include "metrics/accuracy.h"
#include "shard/partition.h"
#include "sketch/registry.h"
#include "trace/generators.h"
#include "trace/oracle.h"

namespace hk {
namespace {

struct DiffTrace {
  std::string label;
  std::vector<FlowId> packets;
  Oracle oracle;
  size_t k;
};

DiffTrace MakeRandomTrace() {
  ZipfTraceConfig config;
  config.num_packets = 150'000;
  config.num_ranks = 20'000;
  config.skew = 1.2;
  config.seed = 21;
  DiffTrace t;
  t.label = "zipf-1.2";
  t.packets = MakeZipfTrace(config).packets;
  for (const FlowId id : t.packets) {
    t.oracle.Add(id);
  }
  t.k = 50;
  return t;
}

DiffTrace MakeFloodTrace() {
  DiffTrace t;
  t.label = "mouse-flood";
  constexpr int kElephants = 20;
  constexpr int kPerPhase = 2000;
  for (int round = 0; round < kPerPhase; ++round) {
    for (int e = 1; e <= kElephants; ++e) {
      t.packets.push_back(static_cast<FlowId>(e));
    }
  }
  for (uint64_t m = 0; m < 50'000; ++m) {
    t.packets.push_back(Mix64(m + 1000));
  }
  for (int round = 0; round < kPerPhase; ++round) {
    for (int e = 1; e <= kElephants; ++e) {
      t.packets.push_back(static_cast<FlowId>(e));
    }
  }
  for (const FlowId id : t.packets) {
    t.oracle.Add(id);
  }
  t.k = 20;
  return t;
}

// The hot-partition adversary: every elephant id is filtered to land in
// partition 0 of a 4-way ShardPartitioner, so a Sharded:n=4 pipeline
// funnels all heavy work through one shard while the mice spread evenly.
// The shared slab is indifferent to the skew - this trace is the bench's
// skew stress in test form.
DiffTrace MakeSkewedKeyTrace() {
  DiffTrace t;
  t.label = "skewed-key";
  const ShardPartitioner partitioner(4);
  std::vector<FlowId> elephants;
  for (uint64_t candidate = 1; elephants.size() < 20; ++candidate) {
    const FlowId id = Mix64(candidate ^ 0xabcdef12345ULL);
    if (partitioner.ShardOf(id) == 0) {
      elephants.push_back(id);
    }
  }
  for (int round = 0; round < 3000; ++round) {
    for (const FlowId e : elephants) {
      t.packets.push_back(e);
    }
  }
  for (uint64_t m = 0; m < 40'000; ++m) {
    t.packets.push_back(Mix64(m + 7'000'000));  // mice, evenly partitioned
  }
  for (const FlowId id : t.packets) {
    t.oracle.Add(id);
  }
  t.k = 20;
  return t;
}

const std::vector<DiffTrace>& Traces() {
  static const std::vector<DiffTrace> traces = [] {
    std::vector<DiffTrace> t;
    t.push_back(MakeRandomTrace());
    t.push_back(MakeFloodTrace());
    t.push_back(MakeSkewedKeyTrace());
    return t;
  }();
  return traces;
}

SketchDefaults Defaults(size_t k) {
  SketchDefaults d;
  d.memory_bytes = 50 * 1024;
  d.k = k;
  d.key_kind = KeyKind::kSynthetic4B;
  d.seed = 9;
  return d;
}

// Run `threads` Inserter threads over disjoint contiguous slices of the
// trace (every packet applied exactly once), then quiesce.
void InsertConcurrently(ConcurrentTopK& algo, const std::vector<FlowId>& packets,
                        int threads) {
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const size_t chunk = (packets.size() + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const size_t begin = std::min(static_cast<size_t>(t) * chunk, packets.size());
    const size_t end = std::min(begin + chunk, packets.size());
    pool.emplace_back([&algo, &packets, t, begin, end] {
      ConcurrentTopK::Inserter inserter = algo.MakeInserter(static_cast<uint64_t>(t));
      inserter.InsertBatch(
          std::span<const FlowId>(packets.data() + begin, end - begin));
    });
  }
  for (auto& thread : pool) {
    thread.join();
  }
  algo.Flush();
}

class ConcurrentDifferentialSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ConcurrentDifferentialSweep, RecallHoldsUnderMultiThreadedInsertion) {
  const auto& [inner, threads] = GetParam();
  for (const DiffTrace& trace : Traces()) {
    ConcurrentTopKOptions options;
    options.inner_spec = inner;
    auto algo = std::make_unique<ConcurrentTopK>(options, Defaults(trace.k));
    InsertConcurrently(*algo, trace.packets, threads);

    const QueryResult result = algo->Snapshot({.k = trace.k});
    EXPECT_EQ(result.consistency, ConsistencyLevel::kExact);
    const auto& top = result.flows;
    EXPECT_LE(top.size(), trace.k);

    std::set<FlowId> distinct;
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_TRUE(distinct.insert(top[i].id).second)
          << inner << " x" << threads << " duplicate " << top[i].id << " on "
          << trace.label;
      if (i > 0) {
        EXPECT_LE(top[i].count, top[i - 1].count);
      }
    }
    // Concurrency must not cost the unmissable elephants: every true top-5
    // flow is several times the k-th size on all three traces.
    for (const auto& truth : trace.oracle.TopK(5)) {
      EXPECT_TRUE(distinct.count(truth.id) != 0)
          << inner << " x" << threads << " dropped top flow " << truth.id << " on "
          << trace.label;
    }
    // Same floor the sequential harness holds HeavyKeeper to: racing
    // threads may lose individual updates (lower-bound semantics) but not
    // whole elephants.
    const AccuracyReport report = EvaluateTopK(top, trace.oracle, trace.k);
    EXPECT_GE(report.recall, 0.9) << inner << " x" << threads << " on " << trace.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    InnersByThreads, ConcurrentDifferentialSweep,
    ::testing::Combine(::testing::Values("HK-Minimum", "HK-Parallel"),
                       ::testing::Values(2, 4)),
    [](const auto& info) {
      std::string s = std::get<0>(info.param) + "_x" +
                      std::to_string(std::get<1>(info.param));
      for (auto& c : s) {
        if (c == '-') {
          c = '_';
        }
      }
      return s;
    });

// --- relaxed reads while inserters run ------------------------------------

TEST(ConcurrentRelaxedReadTest, SnapshotDuringInsertionIsWellFormed) {
  // Collision-free fingerprints (fp=32) + cb=32 make Theorem 2 checkable
  // mid-stream: every reported estimate must be a lower bound of the final
  // truth at every instant, because counters only lose updates under
  // concurrency, never invent them. Torn reads would show up as wild
  // values; duplicate slots as repeated ids.
  const DiffTrace& trace = Traces()[0];
  ConcurrentTopKOptions options;
  options.inner_spec = "HK-Minimum:fp=32,cb=32";
  auto algo = std::make_unique<ConcurrentTopK>(options, Defaults(trace.k));

  std::atomic<bool> done{false};
  std::thread writer([&] {
    ConcurrentTopK::Inserter inserter = algo->MakeInserter(0);
    inserter.InsertBatch(trace.packets);
    done.store(true, std::memory_order_release);
  });

  size_t snapshots = 0;
  while (!done.load(std::memory_order_acquire)) {
    const QueryResult result =
        algo->Snapshot({.k = trace.k, .consistency = ConsistencyLevel::kRelaxed});
    EXPECT_EQ(result.consistency, ConsistencyLevel::kRelaxed);
    ++snapshots;
    std::set<FlowId> distinct;
    for (const auto& fc : result.flows) {
      EXPECT_TRUE(distinct.insert(fc.id).second) << "torn/duplicate slot " << fc.id;
      // No-overestimation against the FINAL truth: mid-stream counts are
      // lower bounds of end-of-stream counts.
      EXPECT_LE(fc.count, trace.oracle.Count(fc.id))
          << "flow " << fc.id << " above truth mid-stream";
    }
  }
  writer.join();
  algo->Flush();
  EXPECT_GT(snapshots, 0u);

  // After quiescing, the exact snapshot still satisfies the bound.
  const QueryResult exact = algo->Snapshot({.k = trace.k});
  EXPECT_EQ(exact.consistency, ConsistencyLevel::kExact);
  for (const auto& fc : exact.flows) {
    EXPECT_LE(fc.count, trace.oracle.Count(fc.id)) << fc.id;
  }
}

TEST(ConcurrentRelaxedReadTest, RelaxedSnapshotDoesNotStallWriters) {
  // Smoke-check the "no quiesce" claim: a relaxed snapshot taken while the
  // rings are backed up returns without waiting for them to drain (an
  // exact one would block until every packet is applied).
  auto algo = MakeSketch("Concurrent:threads=2,ring=64,inner=HK-Minimum",
                         Defaults(50));
  std::vector<FlowId> burst(10'000, FlowId{1});
  algo->InsertBatch(burst);  // likely still draining when we snapshot
  const QueryResult relaxed =
      algo->Snapshot({.k = 10, .consistency = ConsistencyLevel::kRelaxed});
  EXPECT_EQ(relaxed.consistency, ConsistencyLevel::kRelaxed);
  algo->Flush();
  EXPECT_EQ(algo->EstimateSize(1), 10'000u);
}

}  // namespace
}  // namespace hk
