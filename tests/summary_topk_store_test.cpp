// Differential tests: the two top-k store backends (min-heap and
// Stream-Summary, Section III-C note) must behave identically through the
// duck-typed store API used by the HeavyKeeper pipelines.
#include "summary/topk_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace hk {
namespace {

template <typename Store>
class TopKStoreTypedTest : public ::testing::Test {};

using StoreTypes = ::testing::Types<HeapTopKStore, SummaryTopKStore>;
TYPED_TEST_SUITE(TopKStoreTypedTest, StoreTypes);

TYPED_TEST(TopKStoreTypedTest, BasicLifecycle) {
  TypeParam store(3);
  EXPECT_EQ(store.capacity(), 3u);
  EXPECT_FALSE(store.Full());
  store.Insert(1, 4);
  store.Insert(2, 6);
  store.Insert(3, 2);
  EXPECT_TRUE(store.Full());
  EXPECT_EQ(store.MinCount(), 2u);
  EXPECT_EQ(store.Value(2), 6u);

  store.ReplaceMin(4, 3);
  EXPECT_FALSE(store.Contains(3));
  EXPECT_TRUE(store.Contains(4));
  EXPECT_EQ(store.MinCount(), 3u);

  store.RaiseCount(4, 10);
  EXPECT_EQ(store.Value(4), 10u);
  EXPECT_EQ(store.MinCount(), 4u);

  const auto top = store.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 4u);
  EXPECT_EQ(top[1].id, 2u);
}

TYPED_TEST(TopKStoreTypedTest, RaiseIsMaxSemantics) {
  TypeParam store(2);
  store.Insert(1, 9);
  store.RaiseCount(1, 5);
  EXPECT_EQ(store.Value(1), 9u);
}

TYPED_TEST(TopKStoreTypedTest, EmptyStoreMinIsZero) {
  TypeParam store(4);
  EXPECT_EQ(store.MinCount(), 0u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.TopK(5).empty());
}

TEST(TopKStoreDifferentialTest, BackendsAgreeOnRandomWorkload) {
  constexpr size_t kCapacity = 16;
  HeapTopKStore heap(kCapacity);
  SummaryTopKStore summary(kCapacity);
  Rng rng(2024);

  for (int i = 0; i < 20000; ++i) {
    const FlowId id = rng.NextBounded(100) + 1;
    const uint64_t v = rng.NextBounded(500) + 1;
    ASSERT_EQ(heap.Contains(id), summary.Contains(id)) << "op " << i;
    if (heap.Contains(id)) {
      heap.RaiseCount(id, v);
      summary.RaiseCount(id, v);
    } else if (!heap.Full()) {
      heap.Insert(id, v);
      summary.Insert(id, v);
    } else if (v == heap.MinCount() + 1) {
      // nmin+1 replacements only (the HeavyKeeper admission rule). When
      // several entries tie at the min the two backends may legitimately
      // evict different ids and membership would diverge, so only replace
      // when the victim is unique.
      const auto entries = heap.TopK(kCapacity);
      size_t at_min = 0;
      for (const auto& fc : entries) {
        if (fc.count == heap.MinCount()) {
          ++at_min;
        }
      }
      if (at_min == 1) {
        heap.ReplaceMin(id, v);
        summary.ReplaceMin(id, v);
      }
    }
    ASSERT_EQ(heap.MinCount(), summary.MinCount()) << "op " << i;
    ASSERT_EQ(heap.size(), summary.size()) << "op " << i;
  }

  const auto ht = heap.TopK(kCapacity);
  const auto st = summary.TopK(kCapacity);
  ASSERT_EQ(ht.size(), st.size());
  for (size_t i = 0; i < ht.size(); ++i) {
    EXPECT_EQ(ht[i].count, st[i].count) << "rank " << i;
  }
}

TEST(TopKStoreTest, BytesPerEntryAccounting) {
  // Heap: key + 32-bit count. Stream-Summary adds list/index overhead.
  EXPECT_EQ(HeapTopKStore::BytesPerEntry(13), 17u);
  EXPECT_EQ(SummaryTopKStore::BytesPerEntry(13), 33u);
  EXPECT_LT(HeapTopKStore::BytesPerEntry(4), SummaryTopKStore::BytesPerEntry(4));
}

}  // namespace
}  // namespace hk
