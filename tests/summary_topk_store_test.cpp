// Differential tests: the two top-k store backends (min-heap and
// Stream-Summary, Section III-C note) must behave identically through the
// duck-typed store API used by the HeavyKeeper pipelines.
#include "summary/topk_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace hk {
namespace {

template <typename Store>
class TopKStoreTypedTest : public ::testing::Test {};

using StoreTypes = ::testing::Types<HeapTopKStore, SummaryTopKStore, LazyTopKStore>;
TYPED_TEST_SUITE(TopKStoreTypedTest, StoreTypes);

TYPED_TEST(TopKStoreTypedTest, BasicLifecycle) {
  TypeParam store(3);
  EXPECT_EQ(store.capacity(), 3u);
  EXPECT_FALSE(store.Full());
  store.Insert(1, 4);
  store.Insert(2, 6);
  store.Insert(3, 2);
  EXPECT_TRUE(store.Full());
  EXPECT_EQ(store.MinCount(), 2u);
  EXPECT_EQ(store.Value(2), 6u);

  store.ReplaceMin(4, 3);
  EXPECT_FALSE(store.Contains(3));
  EXPECT_TRUE(store.Contains(4));
  EXPECT_EQ(store.MinCount(), 3u);

  store.RaiseCount(4, 10);
  EXPECT_EQ(store.Value(4), 10u);
  EXPECT_EQ(store.MinCount(), 4u);

  const auto top = store.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 4u);
  EXPECT_EQ(top[1].id, 2u);
}

TYPED_TEST(TopKStoreTypedTest, RaiseIsMaxSemantics) {
  TypeParam store(2);
  store.Insert(1, 9);
  store.RaiseCount(1, 5);
  EXPECT_EQ(store.Value(1), 9u);
}

TYPED_TEST(TopKStoreTypedTest, EmptyStoreMinIsZero) {
  TypeParam store(4);
  EXPECT_EQ(store.MinCount(), 0u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.TopK(5).empty());
}

TEST(TopKStoreDifferentialTest, BackendsAgreeOnRandomWorkload) {
  constexpr size_t kCapacity = 16;
  HeapTopKStore heap(kCapacity);
  SummaryTopKStore summary(kCapacity);
  Rng rng(2024);

  for (int i = 0; i < 20000; ++i) {
    const FlowId id = rng.NextBounded(100) + 1;
    const uint64_t v = rng.NextBounded(500) + 1;
    ASSERT_EQ(heap.Contains(id), summary.Contains(id)) << "op " << i;
    if (heap.Contains(id)) {
      heap.RaiseCount(id, v);
      summary.RaiseCount(id, v);
    } else if (!heap.Full()) {
      heap.Insert(id, v);
      summary.Insert(id, v);
    } else if (v == heap.MinCount() + 1) {
      // nmin+1 replacements only (the HeavyKeeper admission rule). When
      // several entries tie at the min the two backends may legitimately
      // evict different ids and membership would diverge, so only replace
      // when the victim is unique.
      const auto entries = heap.TopK(kCapacity);
      size_t at_min = 0;
      for (const auto& fc : entries) {
        if (fc.count == heap.MinCount()) {
          ++at_min;
        }
      }
      if (at_min == 1) {
        heap.ReplaceMin(id, v);
        summary.ReplaceMin(id, v);
      }
    }
    ASSERT_EQ(heap.MinCount(), summary.MinCount()) << "op " << i;
    ASSERT_EQ(heap.size(), summary.size()) << "op " << i;
  }

  const auto ht = heap.TopK(kCapacity);
  const auto st = summary.TopK(kCapacity);
  ASSERT_EQ(ht.size(), st.size());
  for (size_t i = 0; i < ht.size(); ++i) {
    EXPECT_EQ(ht[i].count, st[i].count) << "rank " << i;
  }
}

// The lazy store defers heap maintenance behind a staleness flag; every
// observable value must still match the eager heap op for op, including the
// nmin threshold right after interleaved raises of the minimum flow.
TEST(TopKStoreDifferentialTest, LazyMatchesEagerHeapExactly) {
  constexpr size_t kCapacity = 16;
  HeapTopKStore eager(kCapacity);
  LazyTopKStore lazy(kCapacity);
  Rng rng(4097);

  for (int i = 0; i < 50000; ++i) {
    const FlowId id = rng.NextBounded(120) + 1;
    const uint64_t v = rng.NextBounded(400) + 1;
    ASSERT_EQ(eager.Contains(id), lazy.Contains(id)) << "op " << i;
    if (eager.Contains(id)) {
      eager.RaiseCount(id, v);
      lazy.RaiseCount(id, v);
    } else if (!eager.Full()) {
      eager.Insert(id, v);
      lazy.Insert(id, v);
    } else if (v == eager.MinCount() + 1) {
      // Replace only when the victim is unique: with several entries tied
      // at the min, eager sift order and lazy deferral may expel different
      // (equally valid) ids and membership would legitimately diverge.
      const auto entries = eager.TopK(kCapacity);
      size_t at_min = 0;
      for (const auto& fc : entries) {
        at_min += fc.count == eager.MinCount() ? 1 : 0;
      }
      if (at_min == 1) {
        const FlowId victim = entries.back().id;
        eager.ReplaceMin(id, v);
        lazy.ReplaceMin(id, v);
        ASSERT_FALSE(lazy.Contains(victim)) << "op " << i;  // same expulsion
      }
    }
    ASSERT_EQ(eager.MinCount(), lazy.MinCount()) << "op " << i;
    ASSERT_EQ(eager.Value(id), lazy.Value(id)) << "op " << i;
    ASSERT_EQ(eager.size(), lazy.size()) << "op " << i;
  }
  // Note: unlike the heap-vs-summary differential above, membership is
  // compared unconditionally - both stores expel the *fresh* minimum and
  // with identical inputs must pick identical victims whenever the minimum
  // is unique; count ties can diverge on id, so compare the sorted counts.
  const auto et = eager.TopK(kCapacity);
  const auto lt = lazy.TopK(kCapacity);
  ASSERT_EQ(et.size(), lt.size());
  for (size_t i = 0; i < et.size(); ++i) {
    EXPECT_EQ(et[i].count, lt[i].count) << "rank " << i;
  }
}

// The Find/Raise slot fast path must be observably identical to RaiseCount.
TEST(TopKStoreTest, LazyFindRaiseSlotMatchesRaiseCount) {
  LazyTopKStore a(4);
  LazyTopKStore b(4);
  for (FlowId id = 1; id <= 4; ++id) {
    a.Insert(id, id);
    b.Insert(id, id);
  }
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const FlowId id = rng.NextBounded(4) + 1;
    const uint64_t v = rng.NextBounded(50);
    uint64_t* slot = a.Find(id);
    ASSERT_NE(slot, nullptr);
    a.Raise(id, slot, v);
    b.RaiseCount(id, v);
    ASSERT_EQ(a.MinCount(), b.MinCount()) << "op " << i;
    ASSERT_EQ(a.Value(id), b.Value(id)) << "op " << i;
  }
  EXPECT_EQ(a.TopK(4), b.TopK(4));
}

// FlowSlotMap carries flow id 0 in its side slot; the store must track it
// like any other flow.
TEST(TopKStoreTest, LazyHandlesFlowIdZero) {
  LazyTopKStore store(2);
  store.Insert(0, 5);
  store.Insert(9, 7);
  EXPECT_TRUE(store.Contains(0));
  EXPECT_EQ(store.Value(0), 5u);
  EXPECT_EQ(store.MinCount(), 5u);
  store.RaiseCount(0, 9);
  EXPECT_EQ(store.MinCount(), 7u);
  store.ReplaceMin(3, 8);
  EXPECT_FALSE(store.Contains(9));
  EXPECT_TRUE(store.Contains(0));
}

TEST(TopKStoreTest, BytesPerEntryAccounting) {
  // Heap: key + 32-bit count. Stream-Summary adds list/index overhead.
  EXPECT_EQ(HeapTopKStore::BytesPerEntry(13), 17u);
  EXPECT_EQ(SummaryTopKStore::BytesPerEntry(13), 33u);
  EXPECT_LT(HeapTopKStore::BytesPerEntry(4), SummaryTopKStore::BytesPerEntry(4));
}

}  // namespace
}  // namespace hk
