#include "core/epoch_monitor.h"

#include <gtest/gtest.h>

#include "core/hk_topk.h"

namespace hk {
namespace {

EpochMonitor::Factory HkFactory() {
  return [](uint64_t epoch) {
    return HeavyKeeperTopK<>::FromMemory(HkVersion::kMinimum, 16 * 1024, 10, 4,
                                         /*seed=*/epoch + 1);
  };
}

TEST(EpochMonitorTest, RotatesOnPacketCount) {
  EpochMonitor monitor(HkFactory(), /*epoch_packets=*/100, /*k=*/10);
  for (int i = 0; i < 250; ++i) {
    monitor.Insert(1);
  }
  EXPECT_EQ(monitor.completed_epochs(), 2u);
  EXPECT_EQ(monitor.packets_in_current_epoch(), 50u);
}

TEST(EpochMonitorTest, InsertWeightedCountsPacketsNotUnits) {
  EpochMonitor monitor(HkFactory(), /*epoch_packets=*/100, /*k=*/10);
  for (int i = 0; i < 100; ++i) {
    monitor.InsertWeighted(42, 100);  // byte-weighted ingest replay shape
  }
  // 100 packets = one rotation, regardless of the 100-unit weights...
  ASSERT_EQ(monitor.completed_epochs(), 1u);
  ASSERT_FALSE(monitor.LastReport().empty());
  EXPECT_EQ(monitor.LastReport()[0].id, 42u);
  // ...while the report carries the weighted size (10k fits the 16-bit
  // counters the factory's default layout uses).
  EXPECT_EQ(monitor.LastReport()[0].count, 10'000u);
}

TEST(EpochMonitorTest, LastReportIsCompletedWindow) {
  EpochMonitor monitor(HkFactory(), 100, 10);
  for (int i = 0; i < 100; ++i) {
    monitor.Insert(42);
  }
  // Exactly one full epoch: flow 42 with 100 packets.
  ASSERT_EQ(monitor.completed_epochs(), 1u);
  ASSERT_FALSE(monitor.LastReport().empty());
  EXPECT_EQ(monitor.LastReport()[0].id, 42u);
  EXPECT_EQ(monitor.LastReport()[0].count, 100u);
  // The new window is empty so far.
  EXPECT_TRUE(monitor.CurrentTopK().empty());
}

TEST(EpochMonitorTest, CallbackSeesEveryEpoch) {
  std::vector<uint64_t> epochs;
  std::vector<size_t> report_sizes;
  EpochMonitor monitor(
      HkFactory(), 50, 10, [&](uint64_t epoch, std::vector<FlowCount> report) {
        epochs.push_back(epoch);
        report_sizes.push_back(report.size());
      });
  for (int i = 0; i < 175; ++i) {
    monitor.Insert(static_cast<FlowId>(i % 5) + 1);
  }
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_EQ(epochs[0], 0u);
  EXPECT_EQ(epochs[2], 2u);
  for (const size_t s : report_sizes) {
    EXPECT_EQ(s, 5u);  // all five flows tracked each epoch
  }
}

TEST(EpochMonitorTest, ManualRotate) {
  EpochMonitor monitor(HkFactory(), 1'000'000, 10);
  monitor.Insert(7);
  monitor.Insert(7);
  monitor.Rotate();
  EXPECT_EQ(monitor.completed_epochs(), 1u);
  ASSERT_EQ(monitor.LastReport().size(), 1u);
  EXPECT_EQ(monitor.LastReport()[0].count, 2u);
  EXPECT_EQ(monitor.packets_in_current_epoch(), 0u);
}

// The pinned rotation-boundary contract (epoch_monitor.h): factory epoch
// arguments, callback indices, and the exact packet on which rotation
// fires. WindowedTopK mirrors this contract, so a drift here would skew
// every sliding-window answer.
TEST(EpochMonitorContractTest, FactorySeesEpochZeroAtConstructionThenEachNewEpoch) {
  std::vector<uint64_t> factory_epochs;
  EpochMonitor monitor(
      [&](uint64_t epoch) {
        factory_epochs.push_back(epoch);
        return HkFactory()(epoch);
      },
      /*epoch_packets=*/10, /*k=*/10);
  // factory_(0) seeds the first window before any packet arrives.
  ASSERT_EQ(factory_epochs, (std::vector<uint64_t>{0}));
  for (int i = 0; i < 30; ++i) {
    monitor.Insert(1);
  }
  // Each rotation builds the *new* epoch's instance: indices 1..R.
  EXPECT_EQ(factory_epochs, (std::vector<uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(monitor.completed_epochs(), 3u);
}

TEST(EpochMonitorContractTest, RotationFiresOnTheNthInsertAfterItLands) {
  // The insert lands in the old epoch first, so a completed window holds
  // exactly epoch_packets packets - the Nth packet triggers the rotation
  // and is counted inside the window it completes.
  uint64_t rotations = 0;
  std::vector<FlowCount> last;
  EpochMonitor monitor(HkFactory(), /*epoch_packets=*/5, /*k=*/10,
                       [&](uint64_t, std::vector<FlowCount> report) {
                         ++rotations;
                         last = std::move(report);
                       });
  for (int i = 0; i < 4; ++i) {
    monitor.Insert(9);
    EXPECT_EQ(rotations, 0u) << "rotated before the window filled";
  }
  monitor.Insert(9);  // the 5th packet: lands, then rotates
  EXPECT_EQ(rotations, 1u);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].count, 5u);  // the triggering insert is in the report
  EXPECT_EQ(monitor.packets_in_current_epoch(), 0u);
}

TEST(EpochMonitorContractTest, ForcedEmptyRotationsStillReportAndAdvance) {
  std::vector<uint64_t> epochs;
  std::vector<size_t> sizes;
  EpochMonitor monitor(HkFactory(), 1'000'000, 10,
                       [&](uint64_t epoch, std::vector<FlowCount> report) {
                         epochs.push_back(epoch);
                         sizes.push_back(report.size());
                       });
  monitor.Rotate();
  monitor.Rotate();
  monitor.Rotate();
  // An empty window is a window: three callbacks, indices 0..2, all empty.
  EXPECT_EQ(epochs, (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_EQ(sizes, (std::vector<size_t>{0, 0, 0}));
  EXPECT_EQ(monitor.completed_epochs(), 3u);
  EXPECT_TRUE(monitor.LastReport().empty());
}

TEST(EpochMonitorTest, EpochsAreIndependent) {
  EpochMonitor monitor(HkFactory(), 100, 10);
  for (int i = 0; i < 100; ++i) {
    monitor.Insert(1);
  }
  for (int i = 0; i < 100; ++i) {
    monitor.Insert(2);
  }
  // The second epoch's report must not contain flow 1.
  ASSERT_EQ(monitor.completed_epochs(), 2u);
  for (const auto& fc : monitor.LastReport()) {
    EXPECT_NE(fc.id, 1u);
  }
}

}  // namespace
}  // namespace hk
