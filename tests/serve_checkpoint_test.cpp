// Checkpoint durability tests: (1) the SaveState/LoadState round trip is
// exact for every registered sketch - a recovered daemon answers queries
// identically to the one that crashed; (2) the manifest file format
// rejects every species of corruption a crash can mint (torn tail,
// truncation, bit flips, foreign bytes) instead of loading garbage.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "serve/checkpoint.h"
#include "sketch/registry.h"
#include "trace/generators.h"

namespace hk {
namespace {

SketchDefaults SmallDefaults() {
  SketchDefaults d;
  d.memory_bytes = 20 * 1024;
  d.k = 50;
  d.key_kind = KeyKind::kFiveTuple13B;
  d.seed = 1;
  return d;
}

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Registry-wide SaveState/LoadState round trip.

class CheckpointSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckpointSweep, SaveLoadRoundTripIsExact) {
  const SketchDefaults defaults = SmallDefaults();
  auto saved = MakeSketch(GetParam(), defaults);
  ASSERT_NE(saved, nullptr);

  const Trace trace = MakeCampusTrace(60000, 3);
  saved->InsertBatch(trace.packets);
  saved->Flush();

  std::vector<uint8_t> blob;
  ASSERT_TRUE(saved->SaveState(&blob)) << GetParam() << " does not support checkpointing";
  ASSERT_FALSE(blob.empty()) << GetParam();

  // Fresh identical-spec instance, per the LoadState contract.
  auto loaded = MakeSketch(saved->name(), defaults);
  ASSERT_NE(loaded, nullptr);
  ASSERT_TRUE(loaded->LoadState(blob.data(), blob.size())) << GetParam();

  QueryOptions exact;
  exact.k = 30;
  const QueryResult a = saved->Snapshot(exact);
  const QueryResult b = loaded->Snapshot(exact);
  EXPECT_EQ(a.flows, b.flows) << GetParam();
  EXPECT_EQ(a.stats.tracked_flows, b.stats.tracked_flows) << GetParam();
  EXPECT_EQ(a.stats.min_tracked, b.stats.min_tracked) << GetParam();

  for (const auto& fc : a.flows) {
    EXPECT_EQ(saved->EstimateSize(fc.id), loaded->EstimateSize(fc.id)) << GetParam();
  }
  // A flow the trace never produced must stay a mouse on both sides.
  EXPECT_EQ(saved->EstimateSize(0xdeadbeefcafef00dULL),
            loaded->EstimateSize(0xdeadbeefcafef00dULL))
      << GetParam();
}

TEST_P(CheckpointSweep, LoadRejectsTruncatedBlobWithoutMutating) {
  const SketchDefaults defaults = SmallDefaults();
  auto saved = MakeSketch(GetParam(), defaults);
  const Trace trace = MakeCampusTrace(20000, 4);
  saved->InsertBatch(trace.packets);
  saved->Flush();

  std::vector<uint8_t> blob;
  ASSERT_TRUE(saved->SaveState(&blob));

  auto fresh = MakeSketch(saved->name(), defaults);
  EXPECT_FALSE(fresh->LoadState(blob.data(), blob.size() / 2)) << GetParam();
  EXPECT_FALSE(fresh->LoadState(blob.data(), 3)) << GetParam();
  // Trailing garbage must also be rejected - the blob is length-framed by
  // its container, so extra bytes mean the frame was torn.
  std::vector<uint8_t> padded = blob;
  padded.push_back(0x5a);
  EXPECT_FALSE(fresh->LoadState(padded.data(), padded.size())) << GetParam();

  // The failed loads left the instance usable and empty.
  EXPECT_TRUE(fresh->TopK(10).empty()) << GetParam();
  ASSERT_TRUE(fresh->LoadState(blob.data(), blob.size())) << GetParam();
  EXPECT_EQ(fresh->TopK(10), saved->TopK(10)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CheckpointSweep,
                         ::testing::ValuesIn(RegisteredSketches()), [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return s;
                         });

// ---------------------------------------------------------------------------
// Manifest file format.

CheckpointManifest SampleManifest() {
  CheckpointManifest m;
  CheckpointInstance a;
  a.name = "campus";
  a.spec = "HK:mem=32KB,k=40";
  a.memory_bytes = 32 * 1024;
  a.k = 40;
  a.key_kind = static_cast<uint8_t>(KeyKind::kFiveTuple13B);
  a.seed = 7;
  a.source = "/captures/campus.pcap";
  a.source_key_policy = 0;
  a.byte_weighted = 1;
  a.packets_applied = 123456;
  a.state = {1, 2, 3, 4, 5, 6, 7, 8};
  CheckpointInstance b;
  b.name = "edge";
  b.spec = "Concurrent:inner=HK-Basic";
  b.state = std::vector<uint8_t>(300, 0xab);
  m.instances = {a, b};
  return m;
}

void ExpectEqualManifests(const CheckpointManifest& x, const CheckpointManifest& y) {
  ASSERT_EQ(x.instances.size(), y.instances.size());
  for (size_t i = 0; i < x.instances.size(); ++i) {
    const auto& p = x.instances[i];
    const auto& q = y.instances[i];
    EXPECT_EQ(p.name, q.name);
    EXPECT_EQ(p.spec, q.spec);
    EXPECT_EQ(p.memory_bytes, q.memory_bytes);
    EXPECT_EQ(p.k, q.k);
    EXPECT_EQ(p.key_kind, q.key_kind);
    EXPECT_EQ(p.seed, q.seed);
    EXPECT_EQ(p.source, q.source);
    EXPECT_EQ(p.source_key_policy, q.source_key_policy);
    EXPECT_EQ(p.byte_weighted, q.byte_weighted);
    EXPECT_EQ(p.packets_applied, q.packets_applied);
    EXPECT_EQ(p.state, q.state);
  }
}

TEST(CheckpointFormat, EncodeDecodeRoundTrip) {
  const CheckpointManifest m = SampleManifest();
  const std::vector<uint8_t> bytes = EncodeCheckpoint(m);
  CheckpointManifest out;
  std::string err;
  ASSERT_TRUE(DecodeCheckpoint(bytes.data(), bytes.size(), &out, &err)) << err;
  ExpectEqualManifests(m, out);
}

TEST(CheckpointFormat, EmptyManifestRoundTrips) {
  const std::vector<uint8_t> bytes = EncodeCheckpoint(CheckpointManifest{});
  CheckpointManifest out;
  ASSERT_TRUE(DecodeCheckpoint(bytes.data(), bytes.size(), &out, nullptr));
  EXPECT_TRUE(out.instances.empty());
}

TEST(CheckpointFormat, RejectsEveryTruncationPoint) {
  const std::vector<uint8_t> bytes = EncodeCheckpoint(SampleManifest());
  // A crash can tear the file at any byte; no prefix may load.
  for (size_t len = 0; len < bytes.size(); ++len) {
    CheckpointManifest out;
    EXPECT_FALSE(DecodeCheckpoint(bytes.data(), len, &out, nullptr)) << "prefix length " << len;
  }
}

TEST(CheckpointFormat, RejectsBitFlips) {
  const std::vector<uint8_t> bytes = EncodeCheckpoint(SampleManifest());
  // Flip one bit at a spread of positions covering header and payload.
  for (size_t pos = 0; pos < bytes.size(); pos += 13) {
    std::vector<uint8_t> bad = bytes;
    bad[pos] ^= 0x20;
    CheckpointManifest out;
    std::string err;
    EXPECT_FALSE(DecodeCheckpoint(bad.data(), bad.size(), &out, &err))
        << "bit flip at " << pos << " loaded anyway";
  }
}

TEST(CheckpointFormat, RejectsAppendedGarbage) {
  std::vector<uint8_t> bytes = EncodeCheckpoint(SampleManifest());
  bytes.insert(bytes.end(), {0xde, 0xad, 0xbe, 0xef});
  CheckpointManifest out;
  EXPECT_FALSE(DecodeCheckpoint(bytes.data(), bytes.size(), &out, nullptr));
}

TEST(CheckpointFormat, RejectsForeignFile) {
  const std::string text = "GIF89a definitely not a checkpoint";
  CheckpointManifest out;
  std::string err;
  EXPECT_FALSE(DecodeCheckpoint(reinterpret_cast<const uint8_t*>(text.data()), text.size(), &out,
                                &err));
  EXPECT_FALSE(err.empty());
}

TEST(CheckpointFile, AtomicWriteThenLoad) {
  const std::string path = TempPath("ckpt_atomic.hk");
  const CheckpointManifest m = SampleManifest();
  std::string err;
  ASSERT_TRUE(WriteCheckpointAtomic(path, m, &err)) << err;
  CheckpointManifest out;
  ASSERT_TRUE(LoadCheckpoint(path, &out, &err)) << err;
  ExpectEqualManifests(m, out);
  // No temp residue after a clean commit.
  EXPECT_FALSE(RemoveStaleCheckpointTemp(path));
  std::remove(path.c_str());
}

TEST(CheckpointFile, RewriteReplacesAtomically) {
  const std::string path = TempPath("ckpt_rewrite.hk");
  CheckpointManifest first = SampleManifest();
  ASSERT_TRUE(WriteCheckpointAtomic(path, first, nullptr));
  CheckpointManifest second = SampleManifest();
  second.instances[0].packets_applied = 999999;
  second.instances.pop_back();
  ASSERT_TRUE(WriteCheckpointAtomic(path, second, nullptr));
  CheckpointManifest out;
  ASSERT_TRUE(LoadCheckpoint(path, &out, nullptr));
  ExpectEqualManifests(second, out);
  std::remove(path.c_str());
}

TEST(CheckpointFile, TornFileOnDiskRefusesToLoad) {
  const std::string path = TempPath("ckpt_torn.hk");
  const std::vector<uint8_t> bytes = EncodeCheckpoint(SampleManifest());
  // Simulate a non-atomic writer dying mid-write: half the file.
  WriteFileBytes(path, std::vector<uint8_t>(bytes.begin(), bytes.begin() + bytes.size() / 2));
  CheckpointManifest out;
  std::string err;
  EXPECT_FALSE(LoadCheckpoint(path, &out, &err));
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

TEST(CheckpointFile, StaleTempIsDetectedAndRemoved) {
  const std::string path = TempPath("ckpt_stale.hk");
  const std::string tmp = path + ".tmp";
  WriteFileBytes(tmp, {0x01, 0x02, 0x03});  // crash left a partial temp
  EXPECT_TRUE(RemoveStaleCheckpointTemp(path));
  EXPECT_FALSE(RemoveStaleCheckpointTemp(path));  // gone now
  // And a stale temp never shadows the committed file.
  ASSERT_TRUE(WriteCheckpointAtomic(path, SampleManifest(), nullptr));
  WriteFileBytes(tmp, {0x01, 0x02, 0x03});
  CheckpointManifest out;
  ASSERT_TRUE(LoadCheckpoint(path, &out, nullptr));
  EXPECT_EQ(out.instances.size(), 2u);
  std::remove(tmp.c_str());
  std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileReportsOpenError) {
  CheckpointManifest out;
  std::string err;
  EXPECT_FALSE(LoadCheckpoint(TempPath("ckpt_never_written.hk"), &out, &err));
  // ServeCore::Recover keys "fresh start" off this prefix.
  EXPECT_EQ(err.rfind("open ", 0), 0u) << err;
}

}  // namespace
}  // namespace hk
