// End-to-end ingestion differential tests over the committed fixture
// captures (tests/data/fixture_campus.pcap, fixture_caida.pcapng; see
// ingest_roundtrip_test.cpp for the regeneration recipe).
//
// The fixture stream is the real-trace analogue of differential_test.cpp:
// every registered sketch replays the capture through TraceReplayer and
// must keep the same structural invariants and recall floors it holds on
// synthetic traces, and the ISSUE 5 acceptance pins precision >= 0.9 for
// HK-Minimum and its 4-way sharding against the capture's exact oracle.
// Byte-weighted replay and capture-time epoch windows ride the same
// fixtures.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/epoch_monitor.h"
#include "ingest/pcap_reader.h"
#include "ingest/pcap_writer.h"
#include "ingest/trace_replayer.h"
#include "metrics/accuracy.h"
#include "sketch/registry.h"
#include "trace/generators.h"
#include "trace/oracle.h"

namespace hk {
namespace {

constexpr size_t kK = 20;

std::string CampusFixture() { return std::string(HK_TEST_DATA_DIR) + "/fixture_campus.pcap"; }
std::string CaidaFixture() { return std::string(HK_TEST_DATA_DIR) + "/fixture_caida.pcapng"; }

struct Fixture {
  Oracle oracle;        // packet counts
  Oracle byte_oracle;   // wire-length weighted counts
  uint64_t packets = 0;
  uint64_t wire_bytes = 0;
  uint64_t first_ts_ns = 0;
  uint64_t last_ts_ns = 0;
};

const Fixture& LoadFixture(const std::string& path, PcapKeyPolicy policy) {
  static std::unordered_map<std::string, Fixture> cache;
  auto it = cache.find(path);
  if (it != cache.end()) {
    return it->second;
  }
  Fixture f;
  PcapReader reader(policy);
  EXPECT_TRUE(reader.Open(path)) << reader.error();
  PacketRecord record;
  bool first = true;
  while (reader.Next(&record)) {
    f.oracle.Add(record.id);
    f.byte_oracle.Add(record.id, record.wire_len);
    if (first) {
      f.first_ts_ns = record.timestamp_ns;
      first = false;
    }
    f.last_ts_ns = record.timestamp_ns;
  }
  EXPECT_TRUE(reader.ok()) << reader.error();
  f.packets = reader.stats().packets;
  f.wire_bytes = reader.stats().wire_bytes;
  EXPECT_GT(f.packets, 0u) << "fixture missing or empty: " << path;
  return cache.emplace(path, std::move(f)).first->second;
}

SketchDefaults CampusDefaults() {
  SketchDefaults d;
  d.memory_bytes = 50 * 1024;
  d.k = kK;
  d.key_kind = KeyKind::kFiveTuple13B;
  d.seed = 9;
  return d;
}

// Per-family floors, following the synthetic differential harness. Two
// documented exceptions on this small capture:
//   * CounterTree - shared-counter noise correction (same 0.2 floor as
//     differential_test.cpp);
//   * ColdFilter  - its two filter layers absorb the first kT1 + kT2 = 255
//     packets of every flow, and the 4k-packet fixture's largest flow is
//     ~200 packets, so by construction nothing saturates through to the
//     backing Space-Saving. Structural invariants still apply; recall does
//     not (a capture-scale property, not a regression).
double RecallFloor(const std::string& canonical) {
  if (canonical == "CounterTree") {
    return 0.2;
  }
  if (canonical == "ColdFilter") {
    return 0.0;
  }
  return 0.9;
}

AccuracyReport ReplayAndEvaluate(const std::string& spec, const std::string& path,
                                 PcapKeyPolicy policy, const Oracle& oracle) {
  auto algo = MakeSketch(spec, CampusDefaults());
  PcapReader reader(policy);
  EXPECT_TRUE(reader.Open(path)) << reader.error();
  const TraceReplayer replayer;
  const ReplayStats stats = replayer.Replay(reader, *algo);
  EXPECT_EQ(stats.packets, oracle.total_packets());
  return EvaluateTopK(algo->TopK(kK), oracle, kK);
}

// The ISSUE 5 acceptance gate: the committed capture replayed through
// HK-Minimum, plain and 4-way sharded, reaches precision >= 0.9 against
// the exact oracle of that capture.
TEST(IngestAcceptanceTest, FixturePrecisionAtLeastPoint9ForHkMinimumAndSharded) {
  const Fixture& f = LoadFixture(CampusFixture(), PcapKeyPolicy::kFiveTuple);
  for (const std::string spec : {"HK-Minimum", "Sharded:n=4,inner=HK-Minimum"}) {
    const AccuracyReport report =
        ReplayAndEvaluate(spec, CampusFixture(), PcapKeyPolicy::kFiveTuple, f.oracle);
    EXPECT_GE(report.precision, 0.9) << spec;
    EXPECT_GE(report.recall, 0.9) << spec;
  }
}

TEST(IngestAcceptanceTest, CaidaFixtureUnderPairPolicyHoldsTheSameFloor) {
  const Fixture& f = LoadFixture(CaidaFixture(), PcapKeyPolicy::kAddrPair);
  for (const std::string spec : {"HK-Minimum", "Sharded:n=4,inner=HK-Minimum"}) {
    const AccuracyReport report =
        ReplayAndEvaluate(spec, CaidaFixture(), PcapKeyPolicy::kAddrPair, f.oracle);
    EXPECT_GE(report.precision, 0.9) << spec;
  }
}

// Every registered sketch, fed by the real-capture path instead of the
// synthetic generators: structure + recall floors as in differential_test.
class IngestDifferentialSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(IngestDifferentialSweep, InvariantsHoldOnTheFixtureCapture) {
  const std::string name = GetParam();
  const std::string canonical = ResolveSketchName(name);
  ASSERT_FALSE(canonical.empty()) << name;
  const Fixture& f = LoadFixture(CampusFixture(), PcapKeyPolicy::kFiveTuple);

  auto algo = MakeSketch(name, CampusDefaults());
  PcapReader reader(PcapKeyPolicy::kFiveTuple);
  ASSERT_TRUE(reader.Open(CampusFixture())) << reader.error();
  const TraceReplayer replayer;
  const ReplayStats stats = replayer.Replay(reader, *algo);
  EXPECT_EQ(stats.packets, f.packets);
  EXPECT_EQ(stats.wire_bytes, f.wire_bytes);

  const auto top = algo->TopK(kK);
  EXPECT_LE(top.size(), kK);
  std::set<FlowId> distinct;
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_TRUE(distinct.insert(top[i].id).second) << name;
    if (i > 0) {
      EXPECT_LE(top[i].count, top[i - 1].count) << name;
    }
  }
  if (canonical != "ColdFilter") {  // see RecallFloor: sub-255-packet flows
    for (const auto& truth : f.oracle.TopK(5)) {
      EXPECT_TRUE(distinct.count(truth.id) != 0)
          << name << " dropped top flow " << truth.id << " (" << truth.count << " packets)";
    }
  }
  const AccuracyReport report = EvaluateTopK(top, f.oracle, kK);
  EXPECT_GE(report.recall, RecallFloor(canonical)) << name;
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, IngestDifferentialSweep,
                         ::testing::ValuesIn(RegisteredSketches()), [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return s;
                         });

TEST(IngestReplayTest, ThreadedShardedReplayMatchesSynchronous) {
  auto sync = MakeSketch("Sharded:n=4,inner=HK-Minimum", CampusDefaults());
  auto threaded = MakeSketch("Sharded:n=4,threads=1,inner=HK-Minimum", CampusDefaults());
  const TraceReplayer replayer;
  for (TopKAlgorithm* algo : {sync.get(), threaded.get()}) {
    PcapReader reader(PcapKeyPolicy::kFiveTuple);
    ASSERT_TRUE(reader.Open(CampusFixture())) << reader.error();
    replayer.Replay(reader, *algo);
  }
  EXPECT_EQ(sync->TopK(kK), threaded->TopK(kK));
}

TEST(IngestReplayTest, SnapshotReportRidesTheReplay) {
  // snapshot_k makes the replayer hand back the end-of-stream report
  // itself: the Snapshot quiesce replaces the bare Flush, so a threaded
  // consumer's report is exact and matches a post-hoc quiesced TopK().
  auto algo = MakeSketch("Concurrent:threads=2,inner=HK-Minimum", CampusDefaults());
  PcapReader reader(PcapKeyPolicy::kFiveTuple);
  ASSERT_TRUE(reader.Open(CampusFixture())) << reader.error();
  ReplayOptions options;
  options.snapshot_k = kK;
  const ReplayStats stats = TraceReplayer(options).Replay(reader, *algo);
  const Fixture& f = LoadFixture(CampusFixture(), PcapKeyPolicy::kFiveTuple);
  EXPECT_EQ(stats.packets, f.packets);
  EXPECT_EQ(stats.report.consistency, ConsistencyLevel::kExact);
  ASSERT_FALSE(stats.report.flows.empty());
  EXPECT_EQ(stats.report.flows, algo->TopK(kK));
  EXPECT_EQ(stats.report.stats.worker_threads, 2u);
  EXPECT_GE(stats.report.stats.tracked_flows, stats.report.flows.size());
}

TEST(IngestReplayTest, ByteWeightedReplayTracksTheByteOracle) {
  const Fixture& f = LoadFixture(CampusFixture(), PcapKeyPolicy::kFiveTuple);
  SketchDefaults defaults = CampusDefaults();
  defaults.memory_bytes = 256 * 1024;  // byte counters need cb=32 headroom
  auto algo = MakeSketch("HK-Minimum:fp=32,cb=32", defaults);

  PcapReader reader(PcapKeyPolicy::kFiveTuple);
  ASSERT_TRUE(reader.Open(CampusFixture())) << reader.error();
  ReplayOptions options;
  options.byte_weighted = true;
  const TraceReplayer replayer(options);
  const ReplayStats stats = replayer.Replay(reader, *algo);
  EXPECT_EQ(stats.wire_bytes, f.wire_bytes);

  // Collision-free fingerprints: reported byte estimates never exceed the
  // true byte counts (Theorem 2/4 under byte weighting).
  const auto top = algo->TopK(kK);
  ASSERT_FALSE(top.empty());
  for (const auto& fc : top) {
    EXPECT_LE(fc.count, f.byte_oracle.Count(fc.id)) << fc.id;
  }
  const AccuracyReport report = EvaluateTopK(top, f.byte_oracle, kK);
  EXPECT_GE(report.precision, 0.9);
}

TEST(IngestReplayTest, EpochWindowsFollowCaptureTime) {
  const Fixture& f = LoadFixture(CampusFixture(), PcapKeyPolicy::kFiveTuple);
  // Window width = a tenth of the capture's span: expect ~10 rotations.
  const uint64_t span = f.last_ts_ns - f.first_ts_ns;
  ASSERT_GT(span, 0u);
  ReplayOptions options;
  options.epoch_ns = span / 10;

  uint64_t window_packets = 0;
  std::vector<size_t> report_sizes;
  EpochMonitor monitor([](uint64_t) { return MakeSketch("HK-Minimum", CampusDefaults()); },
                       UINT64_MAX, kK, [&](uint64_t, std::vector<FlowCount> report) {
                         report_sizes.push_back(report.size());
                       });
  PcapReader reader(PcapKeyPolicy::kFiveTuple);
  ASSERT_TRUE(reader.Open(CampusFixture())) << reader.error();
  const TraceReplayer replayer(options);
  const ReplayStats stats = replayer.Replay(reader, monitor);
  window_packets = stats.packets;

  EXPECT_EQ(window_packets, f.packets);
  EXPECT_GE(stats.epochs, 9u);
  EXPECT_LE(stats.epochs, 11u);
  EXPECT_EQ(monitor.completed_epochs(), stats.epochs);
  for (const size_t size : report_sizes) {
    EXPECT_GT(size, 0u);  // every closed window saw packets and reports
  }
}

TEST(IngestReplayTest, IdleGapReplayRotatesOncePerSkippedWindow) {
  // Regression for the multi-window rotation loss: three bursts separated
  // by idle gaps of 3+ windows. Every crossed window boundary must rotate
  // - empty windows included - and each completed window's report must
  // match that window's exact oracle (Space-Saving inner: exact while the
  // distinct flows fit).
  const std::string path = std::string(::testing::TempDir()) + "/ingest_gap.pcap";
  constexpr uint64_t kEpochNs = 1'000'000;  // 1 ms windows
  const uint64_t t0 = 1'500'000'000ULL * 1'000'000'000ULL;

  PcapWriter writer;
  ASSERT_TRUE(writer.Open(path));
  // Burst 0 in window 0, burst 1 in window 4 (3 idle windows between),
  // burst 2 in window 9 (4 idle windows between). 40 packets per burst
  // over 2 flows, 1 us packet spacing (well inside one window).
  const uint64_t burst_windows[] = {0, 4, 9};
  for (int b = 0; b < 3; ++b) {
    uint64_t ts = t0 + burst_windows[b] * kEpochNs;
    for (int i = 0; i < 40; ++i) {
      const uint64_t rank = 2 * b + (i < 25 ? 0 : 1);  // 25/15 split per burst
      ASSERT_TRUE(writer.Write(RankToTuple(rank, KeyKind::kFiveTuple13B, 9), ts, 100));
      ts += 1000;
    }
  }
  ASSERT_TRUE(writer.Close());

  // Per-window exact oracles, bucketed by the same capture clock.
  std::unordered_map<uint64_t, Oracle> window_oracle;
  {
    PcapReader reader(PcapKeyPolicy::kFiveTuple);
    ASSERT_TRUE(reader.Open(path)) << reader.error();
    PacketRecord record;
    while (reader.Next(&record)) {
      window_oracle[(record.timestamp_ns - t0) / kEpochNs].Add(record.id);
    }
  }

  std::vector<std::vector<FlowCount>> reports;
  EpochMonitor monitor([](uint64_t) { return MakeSketch("SS", CampusDefaults()); },
                       UINT64_MAX, kK, [&](uint64_t, std::vector<FlowCount> report) {
                         reports.push_back(std::move(report));
                       });
  PcapReader reader(PcapKeyPolicy::kFiveTuple);
  ASSERT_TRUE(reader.Open(path)) << reader.error();
  ReplayOptions options;
  options.epoch_ns = kEpochNs;
  const ReplayStats stats = TraceReplayer(options).Replay(reader, monitor);

  // Windows 0..8 completed (window 9 is still filling): 9 rotations, and
  // stats.epochs agrees with the monitor's own count.
  EXPECT_EQ(stats.packets, 120u);
  EXPECT_EQ(stats.epochs, 9u);
  EXPECT_EQ(monitor.completed_epochs(), stats.epochs);
  ASSERT_EQ(reports.size(), 9u);
  for (uint64_t w = 0; w < reports.size(); ++w) {
    const auto it = window_oracle.find(w);
    const std::vector<FlowCount> expected =
        it == window_oracle.end() ? std::vector<FlowCount>{} : it->second.TopK(kK);
    EXPECT_EQ(reports[w], expected) << "window " << w;
  }
  // The partial window 9 is burst 2, visible through the live view.
  EXPECT_EQ(monitor.CurrentTopK(), window_oracle[9].TopK(kK));
}

TEST(IngestReplayTest, SrcOnlyPolicyCoarsensTheFlowSpace) {
  const Fixture& five = LoadFixture(CampusFixture(), PcapKeyPolicy::kFiveTuple);
  Oracle src_oracle;
  PcapReader reader(PcapKeyPolicy::kSrcOnly);
  ASSERT_TRUE(reader.Open(CampusFixture())) << reader.error();
  PacketRecord record;
  while (reader.Next(&record)) {
    src_oracle.Add(record.id);
  }
  EXPECT_EQ(src_oracle.total_packets(), five.packets);
  EXPECT_LE(src_oracle.num_flows(), five.oracle.num_flows());
}

}  // namespace
}  // namespace hk
