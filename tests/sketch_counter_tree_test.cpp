#include "sketch/counter_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace hk {
namespace {

TEST(CounterTreeTest, LoneFlowEstimatedClosely) {
  CounterTree ct({.leaves = 4096, .degree = 2, .layers = 3, .s = 4}, 1);
  for (int i = 0; i < 5000; ++i) {
    ct.Insert(42);
  }
  // Only this flow exists; noise correction subtracts s*N/m which is small.
  const uint64_t est = ct.EstimateSize(42);
  EXPECT_NEAR(static_cast<double>(est), 5000.0, 5000.0 * 0.05);
}

TEST(CounterTreeTest, CarryPropagationBeyondLeafWidth) {
  // A single 8-bit leaf saturates at 255; a flow of 5000 packets must rely
  // on carries into parent layers, so the estimate far exceeds 255.
  CounterTree ct({.leaves = 64, .degree = 2, .layers = 3, .s = 2}, 2);
  for (int i = 0; i < 5000; ++i) {
    ct.Insert(7);
  }
  EXPECT_GT(ct.EstimateSize(7), 3000u);
}

TEST(CounterTreeTest, NoiseCorrectionKeepsAbsentFlowsSmall) {
  CounterTree ct({.leaves = 8192, .degree = 2, .layers = 3, .s = 4}, 3);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    ct.Insert(rng.NextBounded(5000) + 1);
  }
  // A flow that never appeared: estimate should be near zero relative to N.
  uint64_t total_absent = 0;
  for (FlowId id = 100000; id < 100050; ++id) {
    total_absent += ct.EstimateSize(id);
  }
  EXPECT_LT(total_absent / 50, 400u);
}

TEST(CounterTreeTest, TopKFindsDominantFlows) {
  auto ct = CounterTree::FromMemory(64 * 1024, 7);
  Rng rng(9);
  for (int rep = 0; rep < 1000; ++rep) {
    for (FlowId e = 1; e <= 5; ++e) {
      ct->Insert(e);
      ct->Insert(e);
    }
    for (int m = 0; m < 10; ++m) {
      ct->Insert(1000 + rng.NextBounded(2000));
    }
  }
  const auto top = ct->TopK(5);
  ASSERT_EQ(top.size(), 5u);
  int planted = 0;
  for (const auto& fc : top) {
    if (fc.id <= 5) {
      ++planted;
    }
  }
  EXPECT_GE(planted, 4);  // estimation noise may displace one
}

TEST(CounterTreeTest, MemoryGeometry) {
  auto ct = CounterTree::FromMemory(7000, 1);
  // leaves*(1 + 1/2 + 1/4) = 7/4 * leaves bytes = 7000 -> leaves = 4000.
  EXPECT_NEAR(static_cast<double>(ct->MemoryBytes()), 7000.0, 16.0);
  EXPECT_EQ(ct->name(), "Counter-Tree");
}

TEST(CounterTreeTest, TotalPacketsTracked) {
  CounterTree ct({.leaves = 256, .degree = 2, .layers = 2, .s = 2}, 4);
  for (int i = 0; i < 123; ++i) {
    ct.Insert(static_cast<FlowId>(i));
  }
  EXPECT_EQ(ct.total_packets(), 123u);
}

}  // namespace
}  // namespace hk
