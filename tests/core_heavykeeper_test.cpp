#include "core/heavykeeper.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace hk {
namespace {

HeavyKeeperConfig SmallConfig() {
  HeavyKeeperConfig config;
  config.d = 2;
  config.w = 256;
  config.seed = 7;
  return config;
}

TEST(HeavyKeeperTest, Case1ClaimsEmptyBucket) {
  HeavyKeeper hk(SmallConfig());
  EXPECT_EQ(hk.Query(1), 0u);
  EXPECT_EQ(hk.InsertBasic(1), 1u);
  EXPECT_EQ(hk.Query(1), 1u);
}

TEST(HeavyKeeperTest, Case2IncrementsMatchingFingerprint) {
  HeavyKeeper hk(SmallConfig());
  for (uint32_t i = 1; i <= 100; ++i) {
    EXPECT_EQ(hk.InsertBasic(1), i);
  }
  EXPECT_EQ(hk.Query(1), 100u);
}

TEST(HeavyKeeperTest, Case3DecaysOccupiedBucket) {
  // d=1, w=1: every flow maps to the same bucket. A resident with count 1
  // decays with probability b^-1 ~ 0.926, so a handful of foreign packets
  // must take the bucket over.
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 3;
  HeavyKeeper hk(config);
  hk.InsertBasic(1);
  EXPECT_EQ(hk.Query(1), 1u);
  uint32_t estimate = 0;
  for (int i = 0; i < 50 && estimate == 0; ++i) {
    estimate = hk.InsertBasic(2);
  }
  EXPECT_EQ(estimate, 1u) << "flow 2 should claim the bucket after decay";
  EXPECT_EQ(hk.Query(1), 0u);
}

TEST(HeavyKeeperTest, ElephantResistsDecay) {
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 5;
  HeavyKeeper hk(config);
  for (int i = 0; i < 2000; ++i) {
    hk.InsertBasic(1);
  }
  const uint32_t before = hk.Query(1);
  ASSERT_GT(before, 1500u);
  // 2000 foreign packets: decay probability b^-C is ~0 at C ~ 2000.
  for (int i = 0; i < 2000; ++i) {
    hk.InsertBasic(2);
  }
  EXPECT_EQ(hk.Query(1), before);  // untouched: probability treated as zero
}

TEST(HeavyKeeperTest, QueryReturnsMaxOverMatchingBuckets) {
  HeavyKeeperConfig config = SmallConfig();
  config.d = 4;
  HeavyKeeper hk(config);
  for (int i = 0; i < 50; ++i) {
    hk.InsertBasic(9);
  }
  // All four buckets hold ~50 (some may have decayed under collisions with
  // nothing else in play they are exactly 50).
  EXPECT_EQ(hk.Query(9), 50u);
}

TEST(HeavyKeeperTest, CounterSaturatesAtConfiguredWidth) {
  HeavyKeeperConfig config = SmallConfig();
  config.counter_bits = 4;  // max 15
  HeavyKeeper hk(config);
  for (int i = 0; i < 100; ++i) {
    hk.InsertBasic(3);
  }
  EXPECT_EQ(hk.Query(3), 15u);
}

TEST(HeavyKeeperTest, DeterministicGivenSeed) {
  HeavyKeeper a(SmallConfig());
  HeavyKeeper b(SmallConfig());
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const FlowId id = rng.NextBounded(300) + 1;
    ASSERT_EQ(a.InsertBasic(id), b.InsertBasic(id)) << "packet " << i;
  }
}

TEST(HeavyKeeperTest, MemoryBytesMatchesGeometry) {
  HeavyKeeperConfig config = SmallConfig();  // 16+16 bit buckets
  HeavyKeeper hk(config);
  EXPECT_EQ(hk.MemoryBytes(), 2u * 256u * 4u);
}

TEST(HeavyKeeperTest, FromMemoryUsesFullBudget) {
  const auto config = HeavyKeeperConfig::FromMemory(10 * 1024, 2, 1);
  EXPECT_EQ(config.w, 10u * 1024 / (4 * 2));
}

TEST(HeavyKeeperTest, OptimizationIIGateBlocksIncrement) {
  // A matching, unmonitored bucket whose counter is >= nmin must not grow.
  HeavyKeeperConfig config = SmallConfig();
  HeavyKeeper hk(config);
  for (int i = 0; i < 10; ++i) {
    hk.InsertParallel(1, /*monitored=*/true, /*nmin=*/0);
  }
  ASSERT_EQ(hk.Query(1), 10u);
  // Unmonitored and nmin=5 < C=10: blocked.
  hk.InsertParallel(1, /*monitored=*/false, /*nmin=*/5);
  EXPECT_EQ(hk.Query(1), 10u);
  // Unmonitored but C < nmin: allowed.
  hk.InsertParallel(1, /*monitored=*/false, /*nmin=*/100);
  EXPECT_EQ(hk.Query(1), 11u);
}

TEST(HeavyKeeperTest, MinimumTouchesAtMostOneBucket) {
  HeavyKeeperConfig config = SmallConfig();
  config.d = 3;
  HeavyKeeper hk(config);
  Rng rng(13);
  auto total = [&hk] {
    uint64_t sum = 0;
    for (const auto& array : hk.DebugDump()) {
      for (const auto& bucket : array) {
        sum += bucket.c;
      }
    }
    return sum;
  };
  uint64_t prev = total();
  for (int i = 0; i < 5000; ++i) {
    hk.InsertMinimum(rng.NextBounded(2000) + 1, true, 0);
    const uint64_t now = total();
    // Each insert changes the total counter mass by at most 1 in either
    // direction (claim/increment: +1, decay: -1, blocked/immune: 0).
    ASSERT_LE(now > prev ? now - prev : prev - now, 1u) << "packet " << i;
    prev = now;
  }
}

TEST(HeavyKeeperTest, MinimumPrefersMatchOverEmptyOverDecay) {
  HeavyKeeperConfig config = SmallConfig();
  config.d = 2;
  HeavyKeeper hk(config);
  // Situation 1: second insert increments rather than claiming the other
  // empty mapped bucket.
  EXPECT_EQ(hk.InsertMinimum(5, true, 0), 1u);
  EXPECT_EQ(hk.InsertMinimum(5, true, 0), 2u);
  const auto arrays = hk.DebugDump();
  size_t occupied = 0;
  for (const auto& array : arrays) {
    for (const auto& bucket : array) {
      if (bucket.c > 0) {
        ++occupied;
      }
    }
  }
  EXPECT_EQ(occupied, 1u) << "Minimum version must not duplicate the flow";
}

TEST(HeavyKeeperTest, ParallelDuplicatesAcrossArrays) {
  // Contrast with the Minimum version: the Parallel insert writes the flow
  // into every mapped array (this is what costs it memory efficiency,
  // Section IV / Figure 23 explanation).
  HeavyKeeperConfig config = SmallConfig();
  config.d = 2;
  HeavyKeeper hk(config);
  hk.InsertParallel(5, true, 0);
  size_t occupied = 0;
  for (const auto& array : hk.DebugDump()) {
    for (const auto& bucket : array) {
      if (bucket.c > 0) {
        ++occupied;
      }
    }
  }
  EXPECT_EQ(occupied, 2u);
}

TEST(HeavyKeeperTest, StuckEventsCountedWhenAllBucketsImmovable) {
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 17;
  HeavyKeeper hk(config);
  // Make the lone bucket immovable (counter beyond the decay cutoff).
  for (int i = 0; i < 2000; ++i) {
    hk.InsertBasic(1);
  }
  EXPECT_EQ(hk.stuck_events(), 0u);
  hk.InsertBasic(2);
  EXPECT_EQ(hk.stuck_events(), 1u);
  hk.InsertMinimum(3, true, 0);
  EXPECT_EQ(hk.stuck_events(), 2u);
}

TEST(HeavyKeeperTest, ExpansionAddsArrayAndAcceptsNewFlows) {
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 19;
  config.expansion_threshold = 5;
  config.max_arrays = 3;
  HeavyKeeper hk(config);
  for (int i = 0; i < 2000; ++i) {
    hk.InsertBasic(1);
  }
  ASSERT_EQ(hk.num_arrays(), 1u);
  for (int i = 0; i < 5; ++i) {
    hk.InsertBasic(2);
  }
  EXPECT_EQ(hk.expansions(), 1u);
  EXPECT_EQ(hk.num_arrays(), 2u);
  // The late flow can now be recorded in the fresh array.
  EXPECT_GT(hk.InsertBasic(2), 0u);
  EXPECT_GT(hk.Query(2), 0u);
  // And the resident elephant is still intact.
  EXPECT_GT(hk.Query(1), 1500u);
}

TEST(HeavyKeeperTest, ExpansionCappedByMaxArrays) {
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 23;
  config.expansion_threshold = 1;
  config.max_arrays = 2;
  HeavyKeeper hk(config);
  for (int i = 0; i < 2000; ++i) {
    hk.InsertBasic(1);
  }
  for (int i = 0; i < 2000; ++i) {
    hk.InsertBasic(2);  // fills the added array too
  }
  for (int i = 0; i < 50; ++i) {
    hk.InsertBasic(3);  // stuck again, but no third array allowed
  }
  EXPECT_EQ(hk.num_arrays(), 2u);
}

TEST(HeavyKeeperTest, FingerprintWidthControlsCollisionSpace) {
  HeavyKeeperConfig config = SmallConfig();
  config.fingerprint_bits = 8;
  HeavyKeeper hk(config);
  for (FlowId id = 1; id <= 100; ++id) {
    EXPECT_LT(hk.FingerprintOf(id), 256u);
    EXPECT_NE(hk.FingerprintOf(id), 0u);
  }
}

}  // namespace
}  // namespace hk
