#include "core/collector.h"

#include <gtest/gtest.h>

#include "core/hk_topk.h"
#include "metrics/accuracy.h"
#include "trace/generators.h"
#include "trace/oracle.h"

namespace hk {
namespace {

TEST(CollectorTest, SumPolicyAddsDisjointViews) {
  const std::vector<std::vector<FlowCount>> reports = {
      {{1, 100}, {2, 50}},
      {{1, 40}, {3, 70}},
  };
  const auto combined = CombineReports(reports, 3, CombinePolicy::kSum);
  ASSERT_EQ(combined.size(), 3u);
  EXPECT_EQ(combined[0], (FlowCount{1, 140}));
  EXPECT_EQ(combined[1], (FlowCount{3, 70}));
  EXPECT_EQ(combined[2], (FlowCount{2, 50}));
}

TEST(CollectorTest, MaxPolicyKeepsBestEstimate) {
  const std::vector<std::vector<FlowCount>> reports = {
      {{1, 100}, {2, 50}},
      {{1, 90}, {2, 80}},
  };
  const auto combined = CombineReports(reports, 2, CombinePolicy::kMax);
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_EQ(combined[0], (FlowCount{1, 100}));
  EXPECT_EQ(combined[1], (FlowCount{2, 80}));
}

TEST(CollectorTest, TruncatesToK) {
  const std::vector<std::vector<FlowCount>> reports = {{{1, 3}, {2, 2}, {3, 1}}};
  EXPECT_EQ(CombineReports(reports, 2, CombinePolicy::kSum).size(), 2u);
  EXPECT_TRUE(CombineReports({}, 5, CombinePolicy::kSum).empty());
}

TEST(CollectorTest, TieBrokenById) {
  const std::vector<std::vector<FlowCount>> reports = {{{9, 5}, {3, 5}, {7, 5}}};
  const auto combined = CombineReports(reports, 3, CombinePolicy::kMax);
  EXPECT_EQ(combined[0].id, 3u);
  EXPECT_EQ(combined[1].id, 7u);
  EXPECT_EQ(combined[2].id, 9u);
}

// End-to-end network-wide scenario: traffic is sharded across three
// "switches" (disjoint views), each running its own HeavyKeeper; the
// collector's summed top-k must match the global ground truth.
TEST(CollectorTest, NetworkWideTopKFromShardedTraffic) {
  const Trace trace = MakeCampusTrace(300000, 11);
  Oracle oracle(trace);
  constexpr size_t kSwitches = 3;
  constexpr size_t kK = 50;

  std::vector<std::unique_ptr<HeavyKeeperTopK<>>> switches;
  for (size_t s = 0; s < kSwitches; ++s) {
    switches.push_back(
        HeavyKeeperTopK<>::FromMemory(HkVersion::kMinimum, 40 * 1024, 2 * kK, 13, s + 1));
  }
  // Shard deterministically by flow id (as an ECMP-style splitter would).
  for (const FlowId id : trace.packets) {
    switches[id % kSwitches]->Insert(id);
  }

  std::vector<std::vector<FlowCount>> reports;
  for (const auto& sw : switches) {
    reports.push_back(sw->TopK(2 * kK));
  }
  const auto combined = CombineReports(reports, kK, CombinePolicy::kSum);
  const auto accuracy = EvaluateTopK(combined, oracle, kK);
  EXPECT_GE(accuracy.precision, 0.9);
  EXPECT_LE(accuracy.are, 0.05);
}

// Overlapping-view scenario: every switch sees the same packets (a mirrored
// tap); kMax must not double-count.
TEST(CollectorTest, MirroredViewsUseMax) {
  const Trace trace = MakeCampusTrace(100000, 13);
  Oracle oracle(trace);
  constexpr size_t kK = 20;

  std::vector<std::vector<FlowCount>> reports;
  for (size_t s = 0; s < 2; ++s) {
    auto sw = HeavyKeeperTopK<>::FromMemory(HkVersion::kMinimum, 40 * 1024, kK, 13, s + 1);
    for (const FlowId id : trace.packets) {
      sw->Insert(id);
    }
    reports.push_back(sw->TopK(kK));
  }
  const auto combined = CombineReports(reports, kK, CombinePolicy::kMax);
  const auto accuracy = EvaluateTopK(combined, oracle, kK);
  EXPECT_GE(accuracy.precision, 0.9);
  // No over-estimation: max of two no-overestimate views stays below truth.
  for (const auto& fc : combined) {
    EXPECT_LE(fc.count, oracle.Count(fc.id));
  }
}

}  // namespace
}  // namespace hk
