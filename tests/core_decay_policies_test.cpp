// End-to-end behaviour of the alternative decay functions (Section III-B:
// "functions satisfying the following condition all have a good
// performance") and of decay-related edge regimes: bucket contests between
// two elephants (Section IV-A) and late-arrival elephants (Section III-F).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/hk_topk.h"
#include "metrics/accuracy.h"
#include "trace/generators.h"
#include "trace/oracle.h"

namespace hk {
namespace {

class DecayFunctionSweep
    : public ::testing::TestWithParam<std::tuple<DecayFunction, double, int>> {};

TEST_P(DecayFunctionSweep, FindsElephantsEndToEnd) {
  const auto [function, base, version_int] = GetParam();
  const auto version = static_cast<HkVersion>(version_int);

  ZipfTraceConfig tconfig;
  tconfig.num_packets = 150000;
  tconfig.num_ranks = 20000;
  tconfig.skew = 1.0;
  tconfig.seed = 5;
  const Trace trace = MakeZipfTrace(tconfig);
  Oracle oracle(trace);

  HeavyKeeperConfig config = HeavyKeeperConfig::FromMemory(30 * 1024, 2, 1);
  config.decay_function = function;
  config.b = base;
  HeavyKeeperTopK<> algo(version, config, 100, 4);
  for (const FlowId id : trace.packets) {
    algo.Insert(id);
  }
  const auto report = EvaluateTopK(algo.TopK(100), oracle, 100);
  EXPECT_GE(report.precision, 0.9)
      << DecayFunctionName(function) << " b=" << base << " " << HkVersionName(version);
}

INSTANTIATE_TEST_SUITE_P(
    Functions, DecayFunctionSweep,
    ::testing::Values(std::make_tuple(DecayFunction::kExponential, 1.08, 1),
                      std::make_tuple(DecayFunction::kExponential, 1.08, 2),
                      std::make_tuple(DecayFunction::kExponential, 1.3, 1),
                      std::make_tuple(DecayFunction::kPolynomial, 2.0, 1),
                      std::make_tuple(DecayFunction::kPolynomial, 2.0, 2),
                      std::make_tuple(DecayFunction::kSigmoid, 1.08, 1),
                      std::make_tuple(DecayFunction::kSigmoid, 1.08, 2)));

// Section IV-A's motivating pathology: two elephants contesting one bucket.
// The Parallel version decays the shared bucket on every foreign packet; the
// Minimum version only decays it while it is the *smallest* mapped counter.
TEST(BucketContestTest, MinimumPreservesMoreCountThanParallel) {
  // d=1, w=1: both flows share the single bucket; alternate their packets.
  auto run = [](HkVersion version) -> uint32_t {
    HeavyKeeperConfig config;
    config.d = 1;
    config.w = 1;
    config.seed = 11;
    HeavyKeeper sketch(config);
    for (int i = 0; i < 4000; ++i) {
      if (version == HkVersion::kParallel) {
        sketch.InsertParallel(1, true, 0);
        sketch.InsertParallel(2, true, 0);
      } else {
        sketch.InsertMinimum(1, true, 0);
        sketch.InsertMinimum(2, true, 0);
      }
    }
    return std::max(sketch.Query(1), sketch.Query(2));
  };
  const uint32_t parallel_winner = run(HkVersion::kParallel);
  const uint32_t minimum_winner = run(HkVersion::kMinimum);
  // With d=1 the two disciplines act the same on one bucket, so both keep a
  // winner; the invariant worth pinning is that the counter stays far below
  // the 4000 true packets (the contest costs count) but above zero.
  EXPECT_GT(parallel_winner, 0u);
  EXPECT_GT(minimum_winner, 0u);
  EXPECT_LT(parallel_winner, 4000u);
}

// With d=2 and distinct mappings, the Minimum version decays only the
// smallest mapped counter, so an elephant resident in a bucket that is NOT
// the minimum keeps its full count during a contest (Section IV-B).
TEST(BucketContestTest, MinimumOnlyDecaysTheSmallestMappedCounter) {
  HeavyKeeperConfig config;
  config.d = 2;
  config.w = 64;
  config.seed = 13;
  HeavyKeeper sketch(config);

  // Establish an elephant via the Minimum discipline (one bucket only).
  for (int i = 0; i < 1000; ++i) {
    sketch.InsertMinimum(1, true, 0);
  }
  const uint32_t established = sketch.Query(1);
  ASSERT_GT(established, 900u);

  // Hammer with many distinct one-packet flows. Each such flow decays only
  // its *smallest* mapped bucket; flow 1's counter (1000) is essentially
  // never the smaller of two mapped counters in a 64-wide array of mice.
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    sketch.InsertMinimum(rng.NextU64(), true, 0);
  }
  EXPECT_GE(sketch.Query(1), established * 9 / 10);
}

// Late-arrival elephant (Section III-F): without expansion it cannot enter a
// saturated sketch; with expansion it can.
TEST(LateElephantTest, ExpansionRescuesLateArrivals) {
  auto make_config = [](uint64_t threshold) {
    HeavyKeeperConfig config;
    config.d = 2;
    config.w = 4;
    config.seed = 19;
    config.expansion_threshold = threshold;
    config.max_arrays = 4;
    return config;
  };
  // Freeze every bucket under a sole dominant resident. Contested buckets
  // equilibrate at a small counter (decay probability ~ 1/#contenders), so
  // the Section III-F "stuck" regime requires each bucket to be owned by
  // exactly one elephant: greedily pick flows whose two mapped buckets are
  // both still unowned, then feed each owner until it passes the cutoff.
  auto saturate = [](HeavyKeeper& sketch) {
    const size_t d = sketch.num_arrays();
    const size_t w = sketch.width();
    std::vector<std::vector<bool>> owned(d, std::vector<bool>(w, false));
    size_t covered = 0;
    std::vector<FlowId> owners;
    for (FlowId id = 1; covered < d * w && id < 100000; ++id) {
      bool all_free = true;
      for (size_t j = 0; j < d; ++j) {
        if (owned[j][sketch.BucketIndex(j, id)]) {
          all_free = false;
          break;
        }
      }
      if (!all_free) {
        continue;
      }
      for (size_t j = 0; j < d; ++j) {
        owned[j][sketch.BucketIndex(j, id)] = true;
        ++covered;
      }
      owners.push_back(id);
    }
    ASSERT_EQ(covered, d * w) << "bucket cover not found";
    for (int i = 0; i < 3000; ++i) {
      for (const FlowId id : owners) {
        sketch.InsertBasic(id);
      }
    }
  };

  HeavyKeeper frozen(make_config(0));
  saturate(frozen);
  const DecayTable decay(DecayFunction::kExponential, frozen.config().b);
  for (const auto& array : frozen.DebugDump()) {
    for (const auto& bucket : array) {
      ASSERT_GE(bucket.c, decay.cutoff()) << "precondition: every bucket immovable";
    }
  }
  const FlowId late = 200000;  // beyond the owner id range
  for (int i = 0; i < 3000; ++i) {
    frozen.InsertBasic(late);  // late elephant, expansion disabled
  }
  EXPECT_EQ(frozen.Query(late), 0u) << "saturated sketch should reject the late flow";
  EXPECT_GT(frozen.stuck_events(), 0u);

  HeavyKeeper expanding(make_config(500));
  saturate(expanding);
  for (int i = 0; i < 3000; ++i) {
    expanding.InsertBasic(late);
  }
  EXPECT_GT(expanding.expansions(), 0u);
  EXPECT_GT(expanding.Query(late), 2000u) << "expansion array should capture the late flow";
}

// The stuck regime must also be detected by the Minimum discipline, whose
// single-bucket updates hit it through the minimum-decay path. A single
// dominant resident freezes the lone bucket deterministically.
TEST(LateElephantTest, MinimumDisciplineCountsStuckEvents) {
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 19;
  HeavyKeeper sketch(config);
  for (int i = 0; i < 2000; ++i) {
    sketch.InsertMinimum(1, true, 0);
  }
  const uint64_t before = sketch.stuck_events();
  for (int i = 0; i < 50; ++i) {
    sketch.InsertMinimum(100, true, 0);
  }
  EXPECT_GT(sketch.stuck_events(), before);
}

}  // namespace
}  // namespace hk
