#!/usr/bin/env bash
# End-to-end hk_serve crash-recovery smoke (the CI serve-smoke job; runs
# locally too): start the daemon on the committed campus fixture with
# checkpointing on, query it over the socket with hk_cli, SIGKILL it,
# restart from the checkpoint, and assert the recovered daemon answers
# identically - the file-backed source replays with the applied prefix
# skipped, so a kill loses nothing.
#
# usage: tests/serve_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
HK_SERVE="$REPO_DIR/$BUILD_DIR/hk_serve"
HK_CLI="$REPO_DIR/$BUILD_DIR/hk_cli"
FIXTURE="$REPO_DIR/tests/data/fixture_campus.pcap"

[ -x "$HK_SERVE" ] || { echo "missing $HK_SERVE (build examples first)"; exit 1; }
[ -x "$HK_CLI" ] || { echo "missing $HK_CLI"; exit 1; }
[ -f "$FIXTURE" ] || { echo "missing $FIXTURE"; exit 1; }

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

CKPT="$WORK/smoke.ckpt"

start_daemon() {
  # $@ = extra flags. Port 0 = ephemeral; parse the choice from the log.
  "$HK_SERVE" --port 0 --checkpoint "$CKPT" --interval-ms 100 "$@" \
    2>"$WORK/serve.log" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/serve.log")"
    [ -n "$PORT" ] && return 0
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log"; echo "daemon died"; exit 1; }
    sleep 0.1
  done
  echo "daemon never reported its port"; cat "$WORK/serve.log"; exit 1
}

query() { "$HK_CLI" query --port "$PORT" "$@"; }

wait_ingest_done() {
  for _ in $(seq 1 100); do
    if query "STATS campus" | grep -q "STAT ingest_done 1"; then return 0; fi
    sleep 0.1
  done
  echo "ingest never finished"; query "STATS campus"; exit 1
}

echo "== first run: ingest the fixture, checkpoint, query =="
start_daemon --create "campus=SS:mem=24KB" --attach "campus=$FIXTURE,key=5tuple"
wait_ingest_done

query "PING" | grep -qx "OK pong"
query "LIST" | grep -q "^INSTANCE campus "
query "STATS campus" > "$WORK/stats_before.txt"
grep -q "STAT packets_applied " "$WORK/stats_before.txt"
PACKETS_BEFORE="$(sed -n 's/^STAT packets_applied //p' "$WORK/stats_before.txt")"
[ "$PACKETS_BEFORE" -gt 0 ] || { echo "no packets ingested"; exit 1; }
query "TOPK campus 10 exact" > "$WORK/topk_before.txt"
grep -q "^FLOW " "$WORK/topk_before.txt"
query "CHECKPOINT" | grep -q "^OK checkpoint "
[ -f "$CKPT" ] || { echo "checkpoint file not written"; exit 1; }

echo "== METRICS: exposition sanity, layer coverage, monotone counters =="
# Concurrent and Window instances so those layers' series register too
# (constructors register eagerly - the names show before any traffic).
query "CREATE conc Concurrent:threads=2,inner=HK-Minimum" | grep -qx "OK created conc"
query "CREATE win Window:w=4,epoch=2000,inner=HK-Minimum" | grep -qx "OK created win"

"$HK_CLI" metrics --port "$PORT" > "$WORK/metrics1.txt"
# Valid exposition: every line is a comment or an hk_-prefixed sample.
if grep -qvE '^(# (HELP|TYPE) hk_|hk_)' "$WORK/metrics1.txt"; then
  echo "malformed exposition line:"; grep -vE '^(# (HELP|TYPE) hk_|hk_)' "$WORK/metrics1.txt"
  exit 1
fi
NAMES="$(grep -c '^# TYPE hk_' "$WORK/metrics1.txt")"
[ "$NAMES" -ge 15 ] || { echo "only $NAMES metric names (need >= 15)"; exit 1; }
# Every layer contributes at least one name: sketch core, summary stores,
# the shared-slab front-end, the worker rings, windowing, ingest, serve.
for prefix in hk_core_ hk_store_ hk_concurrent_ hk_ring_ hk_window_ hk_ingest_ hk_serve_; do
  grep -q "^# TYPE $prefix" "$WORK/metrics1.txt" || {
    echo "no $prefix* metric registered"; exit 1; }
done
# The filter argument narrows by name prefix.
"$HK_CLI" metrics --port "$PORT" hk_serve_ > "$WORK/metrics_filtered.txt"
grep -q '^hk_serve_' "$WORK/metrics_filtered.txt"
if grep -q '^hk_core_' "$WORK/metrics_filtered.txt"; then
  echo "filter leaked non-matching series"; exit 1
fi

# Second scrape after more ingest traffic: every *_total counter present
# in both scrapes must be monotone, and the campus packet counter must
# have moved (the conc instance replays the same fixture).
query "ATTACH conc $FIXTURE key=5tuple" | grep -qx "OK attached conc"
for _ in $(seq 1 100); do
  if query "STATS conc" | grep -q "STAT ingest_done 1"; then break; fi
  sleep 0.1
done
"$HK_CLI" metrics --port "$PORT" > "$WORK/metrics2.txt"
awk 'NR==FNR { if ($1 ~ /_total(\{|$)/ && $1 !~ /^#/) before[$1] = $2; next }
     ($1 in before) && $2 + 0 < before[$1] + 0 {
       print "counter went backwards: " $1 " " before[$1] " -> " $2; bad = 1 }
     END { exit bad }' "$WORK/metrics1.txt" "$WORK/metrics2.txt" || {
  echo "counters not monotone across scrapes"; exit 1; }
P1="$(sed -n 's/^hk_ingest_packets_total{instance="conc"} //p' "$WORK/metrics2.txt")"
[ -n "$P1" ] && [ "$P1" -gt 0 ] || { echo "conc ingest counter never moved"; exit 1; }
query "DROP conc" | grep -qx "OK dropped conc"
query "DROP win" | grep -qx "OK dropped win"
# A periodic checkpoint may have captured the extra instances; rewrite the
# manifest so the recovery section below still sees exactly one.
query "CHECKPOINT" | grep -q "^OK checkpoint "

echo "== SIGKILL the daemon =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "== restart: recover from the checkpoint =="
start_daemon
grep -q "recovered 1 instance" "$WORK/serve.log" || {
  echo "recovery not reported"; cat "$WORK/serve.log"; exit 1; }
wait_ingest_done

query "TOPK campus 10 exact" > "$WORK/topk_after.txt"
PACKETS_AFTER="$(query "STATS campus" | sed -n 's/^STAT packets_applied //p')"

[ "$PACKETS_BEFORE" = "$PACKETS_AFTER" ] || {
  echo "packet offset lost across the kill: $PACKETS_BEFORE vs $PACKETS_AFTER"; exit 1; }
diff "$WORK/topk_before.txt" "$WORK/topk_after.txt" || {
  echo "recovered TOPK differs from the pre-kill answer"; exit 1; }

echo "== clean shutdown over the wire =="
query "SHUTDOWN" | grep -q "^OK shutting down"
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVE_PID" 2>/dev/null && { echo "daemon ignored SHUTDOWN"; exit 1; }
SERVE_PID=""

echo "serve smoke passed: $PACKETS_BEFORE packets, recovery exact"
