#!/usr/bin/env bash
# End-to-end hk_serve crash-recovery smoke (the CI serve-smoke job; runs
# locally too): start the daemon on the committed campus fixture with
# checkpointing on, query it over the socket with hk_cli, SIGKILL it,
# restart from the checkpoint, and assert the recovered daemon answers
# identically - the file-backed source replays with the applied prefix
# skipped, so a kill loses nothing.
#
# usage: tests/serve_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
HK_SERVE="$REPO_DIR/$BUILD_DIR/hk_serve"
HK_CLI="$REPO_DIR/$BUILD_DIR/hk_cli"
FIXTURE="$REPO_DIR/tests/data/fixture_campus.pcap"

[ -x "$HK_SERVE" ] || { echo "missing $HK_SERVE (build examples first)"; exit 1; }
[ -x "$HK_CLI" ] || { echo "missing $HK_CLI"; exit 1; }
[ -f "$FIXTURE" ] || { echo "missing $FIXTURE"; exit 1; }

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

CKPT="$WORK/smoke.ckpt"

start_daemon() {
  # $@ = extra flags. Port 0 = ephemeral; parse the choice from the log.
  "$HK_SERVE" --port 0 --checkpoint "$CKPT" --interval-ms 100 "$@" \
    2>"$WORK/serve.log" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/serve.log")"
    [ -n "$PORT" ] && return 0
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log"; echo "daemon died"; exit 1; }
    sleep 0.1
  done
  echo "daemon never reported its port"; cat "$WORK/serve.log"; exit 1
}

query() { "$HK_CLI" query --port "$PORT" "$@"; }

wait_ingest_done() {
  for _ in $(seq 1 100); do
    if query "STATS campus" | grep -q "STAT ingest_done 1"; then return 0; fi
    sleep 0.1
  done
  echo "ingest never finished"; query "STATS campus"; exit 1
}

echo "== first run: ingest the fixture, checkpoint, query =="
start_daemon --create "campus=SS:mem=24KB" --attach "campus=$FIXTURE,key=5tuple"
wait_ingest_done

query "PING" | grep -qx "OK pong"
query "LIST" | grep -q "^INSTANCE campus "
query "STATS campus" > "$WORK/stats_before.txt"
grep -q "STAT packets_applied " "$WORK/stats_before.txt"
PACKETS_BEFORE="$(sed -n 's/^STAT packets_applied //p' "$WORK/stats_before.txt")"
[ "$PACKETS_BEFORE" -gt 0 ] || { echo "no packets ingested"; exit 1; }
query "TOPK campus 10 exact" > "$WORK/topk_before.txt"
grep -q "^FLOW " "$WORK/topk_before.txt"
query "CHECKPOINT" | grep -q "^OK checkpoint "
[ -f "$CKPT" ] || { echo "checkpoint file not written"; exit 1; }

echo "== SIGKILL the daemon =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "== restart: recover from the checkpoint =="
start_daemon
grep -q "recovered 1 instance" "$WORK/serve.log" || {
  echo "recovery not reported"; cat "$WORK/serve.log"; exit 1; }
wait_ingest_done

query "TOPK campus 10 exact" > "$WORK/topk_after.txt"
PACKETS_AFTER="$(query "STATS campus" | sed -n 's/^STAT packets_applied //p')"

[ "$PACKETS_BEFORE" = "$PACKETS_AFTER" ] || {
  echo "packet offset lost across the kill: $PACKETS_BEFORE vs $PACKETS_AFTER"; exit 1; }
diff "$WORK/topk_before.txt" "$WORK/topk_after.txt" || {
  echo "recovered TOPK differs from the pre-kill answer"; exit 1; }

echo "== clean shutdown over the wire =="
query "SHUTDOWN" | grep -q "^OK shutting down"
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVE_PID" 2>/dev/null && { echo "daemon ignored SHUTDOWN"; exit 1; }
SERVE_PID=""

echo "serve smoke passed: $PACKETS_BEFORE packets, recovery exact"
