#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ovs/datapath.h"
#include "ovs/pipeline.h"
#include "ovs/spsc_ring.h"
#include "sketch/registry.h"
#include "sketch/space_saving.h"

namespace hk {
namespace {

TEST(SpscRingTest, FifoOrderSingleThreaded) {
  SpscRing<int> ring(8);
  const int cap = static_cast<int>(ring.capacity());
  for (int i = 0; i < cap; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < cap; ++i) {
    int v = -1;
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_FALSE(ring.TryPop(&v));  // empty
}

TEST(SpscRingTest, CapacityRoundedToPowerOfTwoMinusOne) {
  SpscRing<int> ring(5);
  EXPECT_GE(ring.capacity(), 5u);
  size_t pushed = 0;
  while (ring.TryPush(1)) {
    ++pushed;
  }
  EXPECT_EQ(pushed, ring.capacity());
}

TEST(SpscRingTest, ConcurrentStressPreservesEverything) {
  SpscRing<uint64_t> ring(1024);
  constexpr uint64_t kN = 2'000'000;
  std::atomic<bool> done{false};
  uint64_t sum = 0;
  uint64_t received = 0;
  uint64_t expected_next = 1;
  bool order_ok = true;

  std::thread consumer([&] {
    uint64_t v;
    while (true) {
      if (ring.TryPop(&v)) {
        if (v != expected_next) {
          order_ok = false;
        }
        ++expected_next;
        sum += v;
        ++received;
      } else if (done.load(std::memory_order_acquire) && ring.Empty()) {
        break;
      }
    }
  });

  for (uint64_t i = 1; i <= kN; ++i) {
    while (!ring.TryPush(i)) {
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(received, kN);
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(sum, kN * (kN + 1) / 2);
}

TEST(DatapathTest, HeaderPackParseRoundTrip) {
  const FiveTuple t{0x0a010203, 0xc0a80001, 5353, 443, 17};
  EXPECT_EQ(ParseHeader(PackHeader(t)), t);
}

TEST(DatapathTest, CacheHitsAfterFirstPacket) {
  SimulatedDatapath dp(1024);
  const FiveTuple t{1, 2, 3, 4, 6};
  const RawPacket p = PackHeader(t);
  const FlowId first = dp.Process(p);
  EXPECT_EQ(dp.cache_misses(), 1u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dp.Process(p), first);
  }
  EXPECT_EQ(dp.cache_hits(), 10u);
  EXPECT_EQ(dp.cache_misses(), 1u);
}

TEST(DatapathTest, ForwardingIsDeterministicPerFlow) {
  SimulatedDatapath dp;
  const RawPacket p = PackHeader({9, 8, 7, 6, 6});
  for (int i = 0; i < 20; ++i) {
    dp.Process(p);
  }
  // All packets of one flow leave by exactly one port.
  int ports_used = 0;
  for (size_t port = 0; port < SimulatedDatapath::kPorts; ++port) {
    if (dp.forwarded(port) > 0) {
      ++ports_used;
      EXPECT_EQ(dp.forwarded(port), 20u);
    }
  }
  EXPECT_EQ(ports_used, 1);
}

TEST(PipelineTest, AllPacketsFlowThrough) {
  const auto packets = MakeWirePackets(20000, 2000, 1.0, 3);
  PipelineConfig config;
  config.num_pipelines = 2;
  const auto result = RunPipelines(packets, nullptr, config);
  // The pipeline count is clamped to the hardware; every used pipeline must
  // carry the full packet stream.
  EXPECT_GE(result.pipelines, 1u);
  EXPECT_LE(result.pipelines, 2u);
  EXPECT_EQ(result.packets, result.pipelines * 20000);
  EXPECT_GT(result.mps, 0.0);
}

TEST(PipelineTest, AlgorithmConsumerSeesEveryPacket) {
  // A Space-Saving consumer with ample capacity counts exactly.
  const auto packets = MakeWirePackets(10000, 50, 1.0, 7);
  PipelineConfig config;
  config.num_pipelines = 1;
  SpaceSaving ss(1000, 13);
  SpaceSaving* ss_ptr = &ss;
  const auto result = RunPipelines(packets, [&](size_t) { return &ss; }, config);
  EXPECT_EQ(result.packets, 10000u);
  uint64_t counted = 0;
  for (const auto& fc : ss_ptr->TopK(1000)) {
    counted += fc.count;
  }
  EXPECT_EQ(counted, 10000u);
}

TEST(PipelineTest, SnapshotReportsCollectedPerPipeline) {
  // snapshot_k turns the run into measurement + report: one kExact
  // QueryResult per measuring pipeline, taken off the clock after the
  // consumers Flush()ed. A shared-slab Concurrent consumer exercises the
  // quiesce path end to end (producer -> ring -> scatter -> worker).
  const auto packets = MakeWirePackets(20000, 500, 1.1, 11);
  SketchDefaults defaults;
  defaults.memory_bytes = 64 * 1024;
  defaults.k = 50;
  defaults.key_kind = KeyKind::kFiveTuple13B;
  defaults.seed = 5;
  auto algo = MakeSketch("Concurrent:threads=2,inner=HK-Minimum", defaults);
  PipelineConfig config;
  config.num_pipelines = 1;
  config.snapshot_k = 10;
  const auto result = RunPipelines(packets, [&](size_t) { return algo.get(); }, config);
  EXPECT_EQ(result.packets, 20000u);
  ASSERT_EQ(result.reports.size(), result.pipelines);
  const QueryResult& report = result.reports.front();
  EXPECT_EQ(report.consistency, ConsistencyLevel::kExact);
  EXPECT_LE(report.flows.size(), 10u);
  ASSERT_FALSE(report.flows.empty());
  EXPECT_EQ(report.flows, algo->TopK(10));
  EXPECT_EQ(report.stats.worker_threads, 2u);
  EXPECT_EQ(report.stats.memory_bytes, algo->MemoryBytes());

  // The plain-OVS baseline (no algorithm) has nothing to report.
  const auto baseline = RunPipelines(packets, nullptr, config);
  EXPECT_TRUE(baseline.reports.empty());
}

TEST(PipelineTest, WirePacketsFollowZipf) {
  const auto packets = MakeWirePackets(50000, 1000, 1.2, 9);
  ASSERT_EQ(packets.size(), 50000u);
  // Count the most frequent parsed flow; with skew 1.2 it must dominate.
  std::unordered_map<FlowId, uint64_t> counts;
  for (const auto& p : packets) {
    ++counts[ParseHeader(p).Id()];
  }
  uint64_t max_count = 0;
  for (const auto& [id, c] : counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, 5000u);
}

}  // namespace
}  // namespace hk
