// Weighted updates (library extension; the paper lists them as unsupported,
// Section III-F). InsertBasicWeighted(id, w) must behave like w unit
// insertions: identical in the deterministic cases, statistically identical
// through the decay case, and never over-estimating.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/heavykeeper.h"
#include "core/hk_topk.h"

namespace hk {
namespace {

HeavyKeeperConfig SmallConfig(uint64_t seed = 7) {
  HeavyKeeperConfig config;
  config.d = 2;
  config.w = 256;
  config.counter_bits = 32;
  config.seed = seed;
  return config;
}

TEST(WeightedInsertTest, MatchingCaseEqualsUnitInsertions) {
  HeavyKeeper weighted(SmallConfig());
  HeavyKeeper unit(SmallConfig());
  weighted.InsertBasicWeighted(1, 500);
  for (int i = 0; i < 500; ++i) {
    unit.InsertBasic(1);
  }
  EXPECT_EQ(weighted.Query(1), unit.Query(1));
  EXPECT_EQ(weighted.Query(1), 500u);
}

TEST(WeightedInsertTest, AccumulatesAcrossCalls) {
  HeavyKeeper sketch(SmallConfig());
  sketch.InsertBasicWeighted(1, 100);
  sketch.InsertBasicWeighted(1, 250);
  EXPECT_EQ(sketch.Query(1), 350u);
}

TEST(WeightedInsertTest, ZeroWeightIsANoOp) {
  HeavyKeeper sketch(SmallConfig());
  sketch.InsertBasicWeighted(1, 10);
  EXPECT_EQ(sketch.InsertBasicWeighted(1, 0), 10u);
  EXPECT_EQ(sketch.Query(1), 10u);
}

TEST(WeightedInsertTest, SaturatesAtCounterWidth) {
  HeavyKeeperConfig config = SmallConfig();
  config.counter_bits = 8;  // max 255
  HeavyKeeper sketch(config);
  sketch.InsertBasicWeighted(1, 1000);
  EXPECT_EQ(sketch.Query(1), 255u);
}

TEST(WeightedInsertTest, HeavyWeightEvictsSmallResident) {
  // A resident with weight 3 faces a challenger of weight 1000: the decay
  // coins at C = 3, 2, 1 almost surely all land within the first few units,
  // and the challenger keeps the remaining weight.
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 5;
  config.counter_bits = 32;
  HeavyKeeper sketch(config);
  sketch.InsertBasicWeighted(1, 3);
  const uint32_t estimate = sketch.InsertBasicWeighted(2, 1000);
  EXPECT_GT(estimate, 950u);
  EXPECT_EQ(sketch.Query(1), 0u);
  EXPECT_EQ(sketch.Query(2), estimate);
}

TEST(WeightedInsertTest, ImmovableResidentStaysAndStuckIsCounted) {
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 9;
  config.counter_bits = 32;
  HeavyKeeper sketch(config);
  sketch.InsertBasicWeighted(1, 100000);  // far beyond the decay cutoff
  const uint64_t before = sketch.stuck_events();
  EXPECT_EQ(sketch.InsertBasicWeighted(2, 100000), 0u);
  EXPECT_EQ(sketch.Query(1), 100000u);
  EXPECT_GT(sketch.stuck_events(), before);
}

TEST(WeightedInsertTest, NeverOverestimatesOnWeightedStream) {
  // Byte-count style workload: random weights, collision-free fingerprints.
  HeavyKeeperConfig config = SmallConfig(11);
  config.fingerprint_bits = 32;
  HeavyKeeper sketch(config);
  std::map<FlowId, uint64_t> truth;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const FlowId id = rng.NextBounded(300) + 1;
    const uint32_t weight = static_cast<uint32_t>(rng.NextBounded(1500)) + 40;  // bytes
    sketch.InsertBasicWeighted(id, weight);
    truth[id] += weight;
  }
  for (const auto& [id, total] : truth) {
    EXPECT_LE(sketch.Query(id), total) << "flow " << id;
  }
}

// --- unmonitored-flow weighted decay path ---------------------------------
//
// At the pipeline level, InsertWeighted on a flow *not* in the candidate
// store must replay its weight unit by unit (the admission gates depend on
// the evolving nmin, and decay coins must be spent at the per-unit counter
// values). With a shared seed that replay is bit-identical to the repeated
// unit insertions - including the decay coins it flips against resident
// fingerprints - which is exactly the TopKAlgorithm contract rule 1.

// A pipeline whose store is saturated by `hot` flows, so `challenger` is
// unmonitored and its weighted inserts take the decay/admission path.
std::unique_ptr<HeavyKeeperTopK<>> SaturatedPipeline(uint64_t seed) {
  HeavyKeeperConfig config;
  config.d = 2;
  config.w = 64;  // small arrays: the challenger collides with residents
  config.counter_bits = 32;
  config.seed = seed;
  auto pipeline = std::make_unique<HeavyKeeperTopK<>>(HkVersion::kMinimum, config, /*k=*/8,
                                                      /*key_bytes=*/4);
  for (FlowId hot = 100; hot < 108; ++hot) {
    for (int i = 0; i < 50; ++i) {
      pipeline->Insert(hot);
    }
  }
  return pipeline;
}

TEST(WeightedInsertTest, UnmonitoredWeightedReplaysUnitByUnitExactly) {
  for (const uint64_t seed : {3u, 11u, 29u}) {
    auto weighted = SaturatedPipeline(seed);
    auto repeated = SaturatedPipeline(seed);
    ASSERT_FALSE(weighted->store().Contains(7));  // the challenger is unmonitored

    weighted->InsertWeighted(7, 40);
    for (int u = 0; u < 40; ++u) {
      repeated->Insert(7);
    }

    // Bit-identical sketch state (decay coins included) and reports.
    EXPECT_EQ(weighted->sketch().DebugDump(), repeated->sketch().DebugDump()) << seed;
    EXPECT_EQ(weighted->TopK(8), repeated->TopK(8)) << seed;
    EXPECT_EQ(weighted->EstimateSize(7), repeated->EstimateSize(7)) << seed;
  }
}

TEST(WeightedInsertTest, UnmonitoredWeightedBatchMatchesScalarWeighted) {
  for (const uint64_t seed : {5u, 17u}) {
    auto batched = SaturatedPipeline(seed);
    auto scalar = SaturatedPipeline(seed);

    const std::vector<FlowId> ids = {7, 9, 7, 11, 9, 7};
    const std::vector<uint64_t> weights = {12, 3, 0, 25, 7, 5};
    batched->InsertBatch(ids, weights);
    for (size_t i = 0; i < ids.size(); ++i) {
      scalar->InsertWeighted(ids[i], weights[i]);
    }

    EXPECT_EQ(batched->sketch().DebugDump(), scalar->sketch().DebugDump()) << seed;
    EXPECT_EQ(batched->TopK(8), scalar->TopK(8)) << seed;
  }
}

TEST(WeightedInsertTest, WeightedAdmissionMatchesUnitAdmission) {
  // The challenger's weighted insert must admit it to the store at exactly
  // the same point in the stream as the unit-by-unit run - Theorem 1's
  // nmin + 1 gate evaluated per unit.
  for (const uint64_t seed : {7u, 13u, 23u}) {
    auto weighted = SaturatedPipeline(seed);
    auto repeated = SaturatedPipeline(seed);
    const uint64_t big = 200;  // enough to decay through any resident here
    weighted->InsertWeighted(9, big);
    for (uint64_t u = 0; u < big; ++u) {
      repeated->Insert(9);
    }
    EXPECT_EQ(weighted->store().Contains(9), repeated->store().Contains(9)) << seed;
    EXPECT_EQ(weighted->EstimateSize(9), repeated->EstimateSize(9)) << seed;
  }
}

TEST(WeightedInsertTest, FindsByteCountElephants) {
  // Elephants by bytes, not packets: a few flows send jumbo frames.
  HeavyKeeperConfig config = HeavyKeeperConfig::FromMemory(16 * 1024, 2, 3);
  config.counter_bits = 32;
  HeavyKeeper sketch(config);
  Rng rng(17);
  for (int i = 0; i < 30000; ++i) {
    if (i % 10 == 0) {
      sketch.InsertBasicWeighted(rng.NextBounded(5) + 1, 1500);  // jumbo senders
    } else {
      sketch.InsertBasicWeighted(1000 + rng.NextBounded(5000), 64);  // tiny mice
    }
  }
  for (FlowId id = 1; id <= 5; ++id) {
    EXPECT_GT(sketch.Query(id), 500'000u) << "jumbo flow " << id << " lost";
  }
}

}  // namespace
}  // namespace hk
