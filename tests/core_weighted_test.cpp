// Weighted updates (library extension; the paper lists them as unsupported,
// Section III-F). InsertBasicWeighted(id, w) must behave like w unit
// insertions: identical in the deterministic cases, statistically identical
// through the decay case, and never over-estimating.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/heavykeeper.h"
#include "core/hk_topk.h"

namespace hk {
namespace {

HeavyKeeperConfig SmallConfig(uint64_t seed = 7) {
  HeavyKeeperConfig config;
  config.d = 2;
  config.w = 256;
  config.counter_bits = 32;
  config.seed = seed;
  return config;
}

TEST(WeightedInsertTest, MatchingCaseEqualsUnitInsertions) {
  HeavyKeeper weighted(SmallConfig());
  HeavyKeeper unit(SmallConfig());
  weighted.InsertBasicWeighted(1, 500);
  for (int i = 0; i < 500; ++i) {
    unit.InsertBasic(1);
  }
  EXPECT_EQ(weighted.Query(1), unit.Query(1));
  EXPECT_EQ(weighted.Query(1), 500u);
}

TEST(WeightedInsertTest, AccumulatesAcrossCalls) {
  HeavyKeeper sketch(SmallConfig());
  sketch.InsertBasicWeighted(1, 100);
  sketch.InsertBasicWeighted(1, 250);
  EXPECT_EQ(sketch.Query(1), 350u);
}

TEST(WeightedInsertTest, ZeroWeightIsANoOp) {
  HeavyKeeper sketch(SmallConfig());
  sketch.InsertBasicWeighted(1, 10);
  EXPECT_EQ(sketch.InsertBasicWeighted(1, 0), 10u);
  EXPECT_EQ(sketch.Query(1), 10u);
}

TEST(WeightedInsertTest, SaturatesAtCounterWidth) {
  HeavyKeeperConfig config = SmallConfig();
  config.counter_bits = 8;  // max 255
  HeavyKeeper sketch(config);
  sketch.InsertBasicWeighted(1, 1000);
  EXPECT_EQ(sketch.Query(1), 255u);
}

TEST(WeightedInsertTest, HeavyWeightEvictsSmallResident) {
  // A resident with weight 3 faces a challenger of weight 1000: the decay
  // coins at C = 3, 2, 1 almost surely all land within the first few units,
  // and the challenger keeps the remaining weight.
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 5;
  config.counter_bits = 32;
  HeavyKeeper sketch(config);
  sketch.InsertBasicWeighted(1, 3);
  const uint32_t estimate = sketch.InsertBasicWeighted(2, 1000);
  EXPECT_GT(estimate, 950u);
  EXPECT_EQ(sketch.Query(1), 0u);
  EXPECT_EQ(sketch.Query(2), estimate);
}

TEST(WeightedInsertTest, ImmovableResidentStaysAndStuckIsCounted) {
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = 9;
  config.counter_bits = 32;
  HeavyKeeper sketch(config);
  sketch.InsertBasicWeighted(1, 100000);  // far beyond the decay cutoff
  const uint64_t before = sketch.stuck_events();
  EXPECT_EQ(sketch.InsertBasicWeighted(2, 100000), 0u);
  EXPECT_EQ(sketch.Query(1), 100000u);
  EXPECT_GT(sketch.stuck_events(), before);
}

TEST(WeightedInsertTest, NeverOverestimatesOnWeightedStream) {
  // Byte-count style workload: random weights, collision-free fingerprints.
  HeavyKeeperConfig config = SmallConfig(11);
  config.fingerprint_bits = 32;
  HeavyKeeper sketch(config);
  std::map<FlowId, uint64_t> truth;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const FlowId id = rng.NextBounded(300) + 1;
    const uint32_t weight = static_cast<uint32_t>(rng.NextBounded(1500)) + 40;  // bytes
    sketch.InsertBasicWeighted(id, weight);
    truth[id] += weight;
  }
  for (const auto& [id, total] : truth) {
    EXPECT_LE(sketch.Query(id), total) << "flow " << id;
  }
}

// --- unmonitored-flow weighted decay path ---------------------------------
//
// At the pipeline level, InsertWeighted on a flow *not* in the candidate
// store must replay its weight unit by unit (the admission gates depend on
// the evolving nmin, and decay coins must be spent at the per-unit counter
// values). With a shared seed that replay is bit-identical to the repeated
// unit insertions - including the decay coins it flips against resident
// fingerprints - which is exactly the TopKAlgorithm contract rule 1.

// A pipeline whose store is saturated by `hot` flows, so `challenger` is
// unmonitored and its weighted inserts take the decay/admission path.
std::unique_ptr<HeavyKeeperTopK<>> SaturatedPipeline(uint64_t seed) {
  HeavyKeeperConfig config;
  config.d = 2;
  config.w = 64;  // small arrays: the challenger collides with residents
  config.counter_bits = 32;
  config.seed = seed;
  auto pipeline = std::make_unique<HeavyKeeperTopK<>>(HkVersion::kMinimum, config, /*k=*/8,
                                                      /*key_bytes=*/4);
  for (FlowId hot = 100; hot < 108; ++hot) {
    for (int i = 0; i < 50; ++i) {
      pipeline->Insert(hot);
    }
  }
  return pipeline;
}

TEST(WeightedInsertTest, UnmonitoredWeightedReplaysUnitByUnitExactly) {
  for (const uint64_t seed : {3u, 11u, 29u}) {
    auto weighted = SaturatedPipeline(seed);
    auto repeated = SaturatedPipeline(seed);
    ASSERT_FALSE(weighted->store().Contains(7));  // the challenger is unmonitored

    weighted->InsertWeighted(7, 40);
    for (int u = 0; u < 40; ++u) {
      repeated->Insert(7);
    }

    // Bit-identical sketch state (decay coins included) and reports.
    EXPECT_EQ(weighted->sketch().DebugDump(), repeated->sketch().DebugDump()) << seed;
    EXPECT_EQ(weighted->TopK(8), repeated->TopK(8)) << seed;
    EXPECT_EQ(weighted->EstimateSize(7), repeated->EstimateSize(7)) << seed;
  }
}

TEST(WeightedInsertTest, UnmonitoredWeightedBatchMatchesScalarWeighted) {
  for (const uint64_t seed : {5u, 17u}) {
    auto batched = SaturatedPipeline(seed);
    auto scalar = SaturatedPipeline(seed);

    const std::vector<FlowId> ids = {7, 9, 7, 11, 9, 7};
    const std::vector<uint64_t> weights = {12, 3, 0, 25, 7, 5};
    batched->InsertBatch(ids, weights);
    for (size_t i = 0; i < ids.size(); ++i) {
      scalar->InsertWeighted(ids[i], weights[i]);
    }

    EXPECT_EQ(batched->sketch().DebugDump(), scalar->sketch().DebugDump()) << seed;
    EXPECT_EQ(batched->TopK(8), scalar->TopK(8)) << seed;
  }
}

TEST(WeightedInsertTest, WeightedAdmissionMatchesUnitAdmission) {
  // The challenger's weighted insert must admit it to the store at exactly
  // the same point in the stream as the unit-by-unit run - Theorem 1's
  // nmin + 1 gate evaluated per unit.
  for (const uint64_t seed : {7u, 13u, 23u}) {
    auto weighted = SaturatedPipeline(seed);
    auto repeated = SaturatedPipeline(seed);
    const uint64_t big = 200;  // enough to decay through any resident here
    weighted->InsertWeighted(9, big);
    for (uint64_t u = 0; u < big; ++u) {
      repeated->Insert(9);
    }
    EXPECT_EQ(weighted->store().Contains(9), repeated->store().Contains(9)) << seed;
    EXPECT_EQ(weighted->EstimateSize(9), repeated->EstimateSize(9)) << seed;
  }
}

// --- collapsed geometric weighted decay (config.collapsed_weighted_decay) --
//
// The opt-in collapsed path replaces the per-unit decay coin replay with one
// geometric sample per counter level (DecayTable::GeometricTrials): exactly
// equivalent for weight == 1 (the last unit always flips a plain coin) and
// statistically equivalent for larger weights, closing the unmonitored
// "replay tax" measured by micro_weighted_insert.

HeavyKeeperConfig CollapsedConfig(uint64_t seed, bool collapsed) {
  HeavyKeeperConfig config;
  config.d = 1;
  config.w = 1;
  config.seed = seed;
  config.counter_bits = 32;
  config.collapsed_weighted_decay = collapsed;
  return config;
}

TEST(CollapsedWeightedDecayTest, WeightOneIsBitIdenticalToReplay) {
  // A weight-1 stream must leave both modes in identical states: the
  // collapsed path's last (here: only) unit flips the same plain coin.
  for (const uint64_t seed : {2u, 19u, 83u}) {
    HeavyKeeperConfig replay = SmallConfig(seed);
    HeavyKeeperConfig collapsed = SmallConfig(seed);
    collapsed.collapsed_weighted_decay = true;
    HeavyKeeper a(replay);
    HeavyKeeper b(collapsed);
    Rng rng(seed * 31);
    for (int i = 0; i < 8000; ++i) {
      const FlowId id = 1 + rng.NextBounded(60);  // heavy collisions on w=256
      ASSERT_EQ(a.InsertBasicWeighted(id, 1), b.InsertBasicWeighted(id, 1)) << i;
    }
    EXPECT_EQ(a.DebugDump(), b.DebugDump()) << seed;
  }
}

TEST(CollapsedWeightedDecayTest, DeterministicCasesUnaffected) {
  // Matching and empty buckets collapse identically in both modes; only the
  // randomized mismatch case differs in RNG consumption.
  HeavyKeeper replay(CollapsedConfig(5, false));
  HeavyKeeper collapsed(CollapsedConfig(5, true));
  EXPECT_EQ(replay.InsertBasicWeighted(1, 500), collapsed.InsertBasicWeighted(1, 500));
  EXPECT_EQ(replay.InsertBasicWeighted(1, 250), collapsed.InsertBasicWeighted(1, 250));
  EXPECT_EQ(replay.Query(1), collapsed.Query(1));
  EXPECT_EQ(replay.Query(1), 750u);
}

TEST(CollapsedWeightedDecayTest, ChiSquareMatchesPerUnitReplay) {
  // Resident counter C0 faces a fixed challenger weight; the distribution
  // of the resident's surviving counter (0 = evicted) must match between
  // the replay and collapsed modes. Two-sample chi-square over a fixed
  // seed schedule - deterministic, so a failure is a real semantics drift.
  constexpr uint32_t kResident = 12;
  constexpr uint32_t kWeight = 12;
  constexpr int kTrials = 3000;
  constexpr int kBins = kResident + 1;
  std::vector<int> replay_counts(kBins, 0);
  std::vector<int> collapsed_counts(kBins, 0);
  for (int t = 0; t < kTrials; ++t) {
    const uint64_t seed = 10000 + t;
    for (const bool collapsed : {false, true}) {
      HeavyKeeper sketch(CollapsedConfig(seed, collapsed));
      sketch.InsertBasicWeighted(1, kResident);
      sketch.InsertBasicWeighted(2, kWeight);
      const uint32_t survived = sketch.Query(1);
      ASSERT_LE(survived, kResident);
      (collapsed ? collapsed_counts : replay_counts)[survived] += 1;
    }
  }
  // Pool sparse bins (pooled expectation < 8) to keep the statistic valid.
  double chi2 = 0.0;
  int df = -1;
  int pooled_a = 0;
  int pooled_b = 0;
  auto accumulate = [&](int a, int b) {
    const double ea = (a + b) / 2.0;
    chi2 += (a - ea) * (a - ea) / ea + (b - ea) * (b - ea) / ea;
    ++df;
  };
  for (int bin = 0; bin < kBins; ++bin) {
    pooled_a += replay_counts[bin];
    pooled_b += collapsed_counts[bin];
    if (pooled_a + pooled_b >= 16) {
      accumulate(pooled_a, pooled_b);
      pooled_a = pooled_b = 0;
    }
  }
  if (pooled_a + pooled_b > 0) {
    accumulate(pooled_a, pooled_b);
  }
  ASSERT_GE(df, 4) << "outcome distribution collapsed into too few bins";
  // Critical value at alpha = 0.001 for df <= 12 is < 32.9; the fixed seeds
  // make the comparison reproducible.
  EXPECT_LT(chi2, 32.9) << "collapsed decay distribution drifted from replay";
}

TEST(CollapsedWeightedDecayTest, PipelineWeightOneStreamBitIdentical) {
  // At the pipeline level a weight-1 stream through the collapsed spec must
  // be indistinguishable from the replay spec, store state included.
  for (const uint64_t seed : {3u, 11u}) {
    auto replay = SaturatedPipeline(seed);
    HeavyKeeperConfig config;
    config.d = 2;
    config.w = 64;
    config.counter_bits = 32;
    config.seed = seed;
    config.collapsed_weighted_decay = true;
    auto collapsed = std::make_unique<HeavyKeeperTopK<>>(HkVersion::kMinimum, config,
                                                         /*k=*/8, /*key_bytes=*/4);
    for (FlowId hot = 100; hot < 108; ++hot) {
      for (int i = 0; i < 50; ++i) {
        collapsed->Insert(hot);
      }
    }
    Rng rng(seed + 99);
    for (int i = 0; i < 5000; ++i) {
      const FlowId id = 1 + rng.NextBounded(40);
      replay->InsertWeighted(id, 1);
      collapsed->InsertWeighted(id, 1);
    }
    EXPECT_EQ(replay->sketch().DebugDump(), collapsed->sketch().DebugDump()) << seed;
    EXPECT_EQ(replay->TopK(8), collapsed->TopK(8)) << seed;
  }
}

TEST(CollapsedWeightedDecayTest, PipelineFindsTheSameByteElephants) {
  // Full byte-weighted stream: the collapsed pipeline must report the same
  // elephant set with estimates in the same ballpark (different RNG paths,
  // so only statistical agreement is required).
  auto make = [](bool collapsed) {
    HeavyKeeperConfig config = HeavyKeeperConfig::FromMemory(16 * 1024, 2, 7);
    config.counter_bits = 32;
    config.collapsed_weighted_decay = collapsed;
    return std::make_unique<HeavyKeeperTopK<>>(HkVersion::kMinimum, config, /*k=*/10,
                                               /*key_bytes=*/4);
  };
  auto replay = make(false);
  auto collapsed = make(true);
  Rng rng(401);
  for (int i = 0; i < 40000; ++i) {
    FlowId id;
    uint64_t bytes;
    if (i % 8 == 0) {
      id = 1 + rng.NextBounded(5);  // jumbo senders
      bytes = 1500;
    } else {
      id = 1000 + rng.NextBounded(4000);  // mice: unmonitored replay path
      bytes = 64 + rng.NextBounded(200);
    }
    replay->InsertWeighted(id, bytes);
    collapsed->InsertWeighted(id, bytes);
  }
  for (FlowId id = 1; id <= 5; ++id) {
    const double r = static_cast<double>(replay->EstimateSize(id));
    const double c = static_cast<double>(collapsed->EstimateSize(id));
    ASSERT_GT(r, 0.0) << id;
    ASSERT_GT(c, 0.0) << id;
    EXPECT_NEAR(c / r, 1.0, 0.25) << "flow " << id;
  }
}

TEST(CollapsedWeightedDecayTest, UnmonitoredRunDeterministicSituations) {
  // Direct checks of MinimumWeightedUnmonitoredRun's arithmetic phases.
  HeavyKeeperConfig config = CollapsedConfig(13, true);
  {
    // Gate-open match: admission after exactly nmin + 1 - c units.
    HeavyKeeper sketch(config);
    sketch.InsertBasicWeighted(1, 3);  // matching bucket at c = 3
    uint64_t consumed = 0;
    bool admitted = false;
    ASSERT_TRUE(sketch.MinimumWeightedUnmonitoredRun(sketch.Prepare(1), 100, /*nmin=*/10,
                                                     &consumed, &admitted));
    EXPECT_TRUE(admitted);
    EXPECT_EQ(consumed, 8u);  // 3 -> 11 = nmin + 1
    EXPECT_EQ(sketch.Query(1), 11u);
  }
  {
    // Saturation below nmin + 1: no admission, the whole weight is consumed.
    HeavyKeeperConfig narrow = CollapsedConfig(17, true);
    narrow.counter_bits = 4;  // counter_max = 15
    HeavyKeeper sketch(narrow);
    sketch.InsertBasicWeighted(1, 3);
    uint64_t consumed = 0;
    bool admitted = false;
    ASSERT_TRUE(sketch.MinimumWeightedUnmonitoredRun(sketch.Prepare(1), 100, /*nmin=*/20,
                                                     &consumed, &admitted));
    EXPECT_FALSE(admitted);
    EXPECT_EQ(consumed, 100u);
    EXPECT_EQ(sketch.Query(1), 15u);  // pegged at the 4-bit limit
  }
  {
    // Immovable minimum (past the decay cutoff): per-unit stuck accounting,
    // collapsed into one addition.
    HeavyKeeper sketch(config);
    sketch.InsertBasicWeighted(1, 100000);  // far beyond the cutoff
    const uint64_t before = sketch.stuck_events();
    uint64_t consumed = 0;
    bool admitted = false;
    ASSERT_TRUE(sketch.MinimumWeightedUnmonitoredRun(sketch.Prepare(2), 777, /*nmin=*/5,
                                                     &consumed, &admitted));
    EXPECT_FALSE(admitted);
    EXPECT_EQ(consumed, 777u);
    EXPECT_EQ(sketch.stuck_events(), before + 777);
    EXPECT_EQ(sketch.Query(1), 100000u);  // resident untouched
  }
  {
    // The run refuses to apply when the collapse is off or expansion is on.
    HeavyKeeper off(CollapsedConfig(19, false));
    off.InsertBasicWeighted(1, 5);
    uint64_t consumed = 0;
    bool admitted = false;
    EXPECT_FALSE(off.MinimumWeightedUnmonitoredRun(off.Prepare(2), 10, 3, &consumed,
                                                   &admitted));
    HeavyKeeperConfig expanding = CollapsedConfig(23, true);
    expanding.expansion_threshold = 4;
    HeavyKeeper exp_sketch(expanding);
    exp_sketch.InsertBasicWeighted(1, 5);
    EXPECT_FALSE(exp_sketch.MinimumWeightedUnmonitoredRun(exp_sketch.Prepare(2), 10, 3,
                                                          &consumed, &admitted));
  }
}

TEST(WeightedInsertTest, FindsByteCountElephants) {
  // Elephants by bytes, not packets: a few flows send jumbo frames.
  HeavyKeeperConfig config = HeavyKeeperConfig::FromMemory(16 * 1024, 2, 3);
  config.counter_bits = 32;
  HeavyKeeper sketch(config);
  Rng rng(17);
  for (int i = 0; i < 30000; ++i) {
    if (i % 10 == 0) {
      sketch.InsertBasicWeighted(rng.NextBounded(5) + 1, 1500);  // jumbo senders
    } else {
      sketch.InsertBasicWeighted(1000 + rng.NextBounded(5000), 64);  // tiny mice
    }
  }
  for (FlowId id = 1; id <= 5; ++id) {
    EXPECT_GT(sketch.Query(id), 500'000u) << "jumbo flow " << id << " lost";
  }
}

}  // namespace
}  // namespace hk
