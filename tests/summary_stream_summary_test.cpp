#include "summary/stream_summary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"

namespace hk {
namespace {

TEST(StreamSummaryTest, InsertAndCount) {
  StreamSummary s(4);
  s.Insert(1, 5);
  s.Insert(2, 3);
  EXPECT_EQ(s.Count(1), 5u);
  EXPECT_EQ(s.Count(2), 3u);
  EXPECT_EQ(s.Count(3), 0u);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.Full());
}

TEST(StreamSummaryTest, MinCountTracksSmallestGroup) {
  StreamSummary s(8);
  EXPECT_EQ(s.MinCount(), 0u);
  s.Insert(1, 10);
  EXPECT_EQ(s.MinCount(), 10u);
  s.Insert(2, 4);
  EXPECT_EQ(s.MinCount(), 4u);
  s.Insert(3, 7);
  EXPECT_EQ(s.MinCount(), 4u);
  s.Remove(2);
  EXPECT_EQ(s.MinCount(), 7u);
}

TEST(StreamSummaryTest, IncrementMovesBetweenGroups) {
  StreamSummary s(4);
  s.Insert(1, 1);
  s.Insert(2, 1);
  s.Increment(1);
  EXPECT_EQ(s.Count(1), 2u);
  EXPECT_EQ(s.Count(2), 1u);
  EXPECT_EQ(s.MinCount(), 1u);
  s.Increment(2);
  s.Increment(2);
  EXPECT_EQ(s.Count(2), 3u);
  EXPECT_EQ(s.MinCount(), 2u);
}

TEST(StreamSummaryTest, SpaceSavingSemantics) {
  StreamSummary s(2);
  EXPECT_EQ(s.SpaceSavingUpdate(1), 0u);  // insert
  EXPECT_EQ(s.SpaceSavingUpdate(1), 0u);  // increment
  EXPECT_EQ(s.SpaceSavingUpdate(2), 0u);  // insert
  // Structure full; new flow 3 replaces the min (flow 2, count 1).
  EXPECT_EQ(s.SpaceSavingUpdate(3), 2u);
  EXPECT_EQ(s.Count(3), 2u);  // min + 1
  EXPECT_EQ(s.Error(3), 1u);  // inherited overestimation
  EXPECT_FALSE(s.Contains(2));
  EXPECT_EQ(s.Count(1), 2u);  // untouched
}

TEST(StreamSummaryTest, PopMinReturnsSmallest) {
  StreamSummary s(4);
  s.Insert(1, 9);
  s.Insert(2, 2);
  s.Insert(3, 5);
  const auto e = s.PopMin();
  EXPECT_EQ(e.id, 2u);
  EXPECT_EQ(e.count, 2u);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.Contains(2));
}

TEST(StreamSummaryTest, RaiseCountJumpsGroups) {
  StreamSummary s(4);
  s.Insert(1, 1);
  s.Insert(2, 6);
  s.RaiseCount(1, 10);
  EXPECT_EQ(s.Count(1), 10u);
  EXPECT_EQ(s.MinCount(), 6u);
  // Raising to a lower value is a no-op.
  s.RaiseCount(1, 3);
  EXPECT_EQ(s.Count(1), 10u);
}

TEST(StreamSummaryTest, EntriesEnumerateEverything) {
  StreamSummary s(8);
  for (FlowId id = 1; id <= 5; ++id) {
    s.Insert(id, id * 2);
  }
  auto entries = s.Entries();
  EXPECT_EQ(entries.size(), 5u);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  for (FlowId id = 1; id <= 5; ++id) {
    EXPECT_EQ(entries[id - 1].id, id);
    EXPECT_EQ(entries[id - 1].count, id * 2);
  }
}

TEST(StreamSummaryTest, TopKSortedAndTruncated) {
  StreamSummary s(8);
  s.Insert(1, 5);
  s.Insert(2, 9);
  s.Insert(3, 9);
  s.Insert(4, 1);
  const auto top = s.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 2u);  // tie (9,9) broken by id
  EXPECT_EQ(top[1].id, 3u);
  EXPECT_EQ(top[2].id, 1u);
}

TEST(StreamSummaryTest, CapacityNeverExceeded) {
  StreamSummary s(10);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    s.SpaceSavingUpdate(rng.NextBounded(200) + 1);
    EXPECT_LE(s.size(), 10u);
  }
}

// Space-Saving guarantees vs exact counts:
//   true <= tracked count  and  count - error <= true.
TEST(StreamSummaryTest, SpaceSavingGuaranteesOnRandomStream) {
  StreamSummary s(32);
  std::map<FlowId, uint64_t> truth;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    // Skewed-ish: small ids much more frequent.
    const FlowId id = (rng.NextBounded(1000) < 700) ? rng.NextBounded(10) + 1
                                                    : rng.NextBounded(500) + 11;
    ++truth[id];
    s.SpaceSavingUpdate(id);
  }
  for (const auto& e : s.Entries()) {
    EXPECT_GE(e.count, truth[e.id]) << "flow " << e.id;
    EXPECT_LE(e.count - e.error, truth[e.id]) << "flow " << e.id;
  }
}

// Property: after any operation sequence, MinCount equals the true minimum
// over Entries.
class StreamSummaryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamSummaryPropertyTest, MinInvariantUnderRandomOps) {
  StreamSummary s(16);
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const FlowId id = rng.NextBounded(64) + 1;
    switch (rng.NextBounded(4)) {
      case 0:
      case 1:
        s.SpaceSavingUpdate(id);
        break;
      case 2:
        if (s.Contains(id)) {
          s.RaiseCount(id, s.Count(id) + rng.NextBounded(20));
        }
        break;
      case 3:
        if (s.Contains(id) && s.size() > 1) {
          s.Remove(id);
        }
        break;
    }
    if (s.size() > 0) {
      uint64_t true_min = ~0ULL;
      for (const auto& e : s.Entries()) {
        true_min = std::min(true_min, e.count);
      }
      ASSERT_EQ(s.MinCount(), true_min) << "op " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamSummaryPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace hk
