#include "sketch/css.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "sketch/space_saving.h"

namespace hk {
namespace {

TEST(CssTest, BasicCounting) {
  Css css(8, 1);
  css.Insert(1);
  css.Insert(1);
  css.Insert(2);
  EXPECT_EQ(css.EstimateSize(1), 2u);
  EXPECT_EQ(css.EstimateSize(2), 1u);
}

TEST(CssTest, TopKReportsRealFlowIds) {
  Css css(16, 2);
  for (int i = 0; i < 100; ++i) {
    css.Insert(42);
  }
  for (int i = 0; i < 30; ++i) {
    css.Insert(77);
  }
  const auto top = css.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 42u);
  EXPECT_EQ(top[0].count, 100u);
  EXPECT_EQ(top[1].id, 77u);
}

TEST(CssTest, MemoryPacksMoreEntriesThanSpaceSaving) {
  // The whole point of CSS: several times more entries per byte than
  // pointer-based Space-Saving at 13-byte keys.
  auto css = Css::FromMemory(10 * 1024);
  auto ss = SpaceSaving::FromMemory(10 * 1024, 13);
  EXPECT_EQ(css->MemoryBytes() / Css::kBytesPerEntry, 10u * 1024 / Css::kBytesPerEntry);
  EXPECT_GT(css->MemoryBytes() / Css::kBytesPerEntry,
            4 * (ss->MemoryBytes() / StreamSummary::BytesPerEntry(13)));
}

TEST(CssTest, FingerprintCollisionsConflateCounts) {
  // Find two distinct 64-bit ids with the same fingerprint under the Css
  // seed, then verify their counts merge (the structural error of
  // fingerprint compaction).
  Css css(1024, 7);
  const Fingerprinter fp(Css::kFingerprintBits, Mix64(7 ^ 0xc55ULL));
  FlowId a = 1;
  FlowId b = 0;
  for (FlowId cand = 2; cand < 2000000; ++cand) {
    if (fp(cand) == fp(a)) {
      b = cand;
      break;
    }
  }
  ASSERT_NE(b, 0u) << "no collision found in scan range";

  for (int i = 0; i < 10; ++i) {
    css.Insert(a);
  }
  for (int i = 0; i < 5; ++i) {
    css.Insert(b);
  }
  EXPECT_EQ(css.EstimateSize(a), 15u);
  EXPECT_EQ(css.EstimateSize(b), 15u);
}

TEST(CssTest, SpaceSavingSemanticsPreserved) {
  // With ample capacity CSS must track like Space-Saving (no replacement).
  Css css(4096, 3);
  std::map<FlowId, uint64_t> truth;
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    const FlowId id = rng.NextBounded(500) + 1;
    css.Insert(id);
    ++truth[id];
  }
  // Estimates may only exceed truth (fp collisions / replacements inflate).
  size_t exact = 0;
  for (const auto& [id, count] : truth) {
    EXPECT_GE(css.EstimateSize(id), count);
    if (css.EstimateSize(id) == count) {
      ++exact;
    }
  }
  // 500 flows over a 4096-value fingerprint space: ~30 colliding pairs
  // expected, so at least ~4/5 of the flows stay exact.
  EXPECT_GT(exact, truth.size() * 4 / 5);
}

TEST(CssTest, EvictionRecyclesOwners) {
  Css css(2, 11);
  css.Insert(1);
  css.Insert(1);
  css.Insert(2);
  css.Insert(3);  // replaces min (flow 2's entry)
  const auto top = css.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  // Flow 3 inherited min+1 = 2.
  bool found3 = false;
  for (const auto& fc : top) {
    if (fc.id == 3) {
      found3 = true;
      EXPECT_EQ(fc.count, 2u);
    }
  }
  EXPECT_TRUE(found3);
}

}  // namespace
}  // namespace hk
