// Telemetry library tests (src/telemetry/).
//
// The registry is process-global and shared with every other suite in
// hk_tests, so tests use fresh metric names (unique prefixes) and assert
// on deltas, never on absolute values of shared series. Every test name
// contains "Telemetry" so the TSan CI job's filter picks the suite up -
// the multi-thread hammer is the test that matters under TSan: it proves
// the single-writer cell protocol is exact AND race-free.
#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace hk::telemetry {
namespace {

#ifndef HK_TELEMETRY_DISABLED

// N threads hammering one counter plus a private counter each; the total
// must come out exact. Under TSan this also proves the per-thread cell
// discipline (relaxed single-writer add, registry-mutex retirement on
// thread exit) has no race: half the threads exit before Value() is read,
// so the retired-cells fold is exercised too.
TEST(TelemetryCounter, ExactUnderConcurrentHammer) {
  Registry& registry = Registry::Get();
  Counter* shared = registry.GetCounter("hk_test_hammer_total", "test");
  const uint64_t before = shared->Value();

  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<Counter*> privates;
  privates.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    privates.push_back(registry.GetCounter("hk_test_hammer_private_total", "test",
                                           "thread=\"" + std::to_string(t) + "\""));
  }

  // First wave: threads that exit before the read (retired-cell path).
  std::vector<std::thread> wave;
  for (int t = 0; t < kThreads / 2; ++t) {
    wave.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        shared->Add();
        privates[t]->Add(2);
      }
    });
  }
  for (auto& th : wave) {
    th.join();
  }
  // Second wave: threads still alive at read time (live-cell path).
  wave.clear();
  for (int t = kThreads / 2; t < kThreads; ++t) {
    wave.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        shared->Add();
        privates[t]->Add(2);
      }
    });
  }
  for (auto& th : wave) {
    th.join();
  }

  EXPECT_EQ(shared->Value() - before, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(privates[t]->Value(), kPerThread * 2) << "thread series " << t;
  }
  // SumCounter folds all label series of the name.
  EXPECT_EQ(registry.SumCounter("hk_test_hammer_private_total"),
            kThreads * kPerThread * 2);
}

TEST(TelemetryHistogram, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex((1u << 20) - 1), 20u);
  EXPECT_EQ(Histogram::BucketIndex(1u << 20), 21u);
  // Everything at or past 2^30 lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 30), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kBuckets - 1);
  // The le= label: inclusive upper bound of each non-overflow bucket.
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(5), 31u);

  Histogram* hist =
      Registry::Get().GetHistogram("hk_test_boundary_us", "test histogram");
  hist->Observe(0);
  hist->Observe(1);
  hist->Observe(31);
  hist->Observe(UINT64_MAX);
  EXPECT_EQ(hist->BucketCount(0), 1u);
  EXPECT_EQ(hist->BucketCount(1), 1u);
  EXPECT_EQ(hist->BucketCount(5), 1u);
  EXPECT_EQ(hist->BucketCount(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(hist->Count(), 4u);
  EXPECT_EQ(hist->Sum(), 0 + 1 + 31 + UINT64_MAX);  // wraps; still deterministic
}

TEST(TelemetryGauge, SetAddMaxTo) {
  Gauge* gauge = Registry::Get().GetGauge("hk_test_gauge", "test gauge");
  gauge->Set(10);
  EXPECT_EQ(gauge->Value(), 10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 7);
  gauge->MaxTo(5);  // lower: no-op
  EXPECT_EQ(gauge->Value(), 7);
  gauge->MaxTo(42);
  EXPECT_EQ(gauge->Value(), 42);
}

// Golden exposition: a unique prefix + filter isolates this test's series
// from everything else the process registered.
TEST(TelemetryRegistry, PrometheusExpositionGolden) {
  Registry& registry = Registry::Get();
  Counter* plain = registry.GetCounter("hk_test_expo_total", "Things counted");
  Counter* labeled =
      registry.GetCounter("hk_test_expo_total", "Things counted", "instance=\"edge0\"");
  Gauge* gauge = registry.GetGauge("hk_test_expo_depth", "A depth");
  Histogram* hist = registry.GetHistogram("hk_test_expo_us", "A latency");
  plain->Add(3);
  labeled->Add(4);
  gauge->Set(-2);
  hist->Observe(0);
  hist->Observe(3);

  const std::string text = registry.RenderPrometheus("hk_test_expo");
  std::string expected =
      "# HELP hk_test_expo_depth A depth\n"
      "# TYPE hk_test_expo_depth gauge\n"
      "hk_test_expo_depth -2\n"
      "# HELP hk_test_expo_total Things counted\n"
      "# TYPE hk_test_expo_total counter\n"
      "hk_test_expo_total 3\n"
      "hk_test_expo_total{instance=\"edge0\"} 4\n"
      "# HELP hk_test_expo_us A latency\n"
      "# TYPE hk_test_expo_us histogram\n";
  // Every non-overflow bucket is emitted (cumulative): observations 0 and
  // 3 give cumulative 1 at le="0"/le="1" and 2 from le="3" on.
  for (size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
    expected += "hk_test_expo_us_bucket{le=\"" +
                std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
                std::to_string(b < 2 ? 1 : 2) + "\n";
  }
  expected +=
      "hk_test_expo_us_bucket{le=\"+Inf\"} 2\n"
      "hk_test_expo_us_sum 3\n"
      "hk_test_expo_us_count 2\n";
  EXPECT_EQ(text, expected);

  // The instance="<filter>" alternative pulls labeled series of any name.
  const std::string by_instance = registry.RenderPrometheus("edge0");
  EXPECT_NE(by_instance.find("hk_test_expo_total{instance=\"edge0\"} 4"),
            std::string::npos);
  EXPECT_EQ(by_instance.find("hk_test_expo_total 3"), std::string::npos);
}

TEST(TelemetryRegistry, SameSeriesSameHandle) {
  Registry& registry = Registry::Get();
  Counter* a = registry.GetCounter("hk_test_identity_total", "test");
  Counter* b = registry.GetCounter("hk_test_identity_total", "ignored second help");
  EXPECT_EQ(a, b);
  Counter* labeled = registry.GetCounter("hk_test_identity_total", "test", "x=\"1\"");
  EXPECT_NE(a, labeled);
}

// The runtime kill switch: Add/Observe/Set become no-ops, reads stay valid.
TEST(TelemetryRegistry, DisabledIsNoOp) {
  Registry& registry = Registry::Get();
  Counter* counter = registry.GetCounter("hk_test_disabled_total", "test");
  Gauge* gauge = registry.GetGauge("hk_test_disabled_gauge", "test");
  Histogram* hist = registry.GetHistogram("hk_test_disabled_us", "test");
  counter->Add(5);
  Registry::SetEnabled(false);
  counter->Add(100);
  gauge->Set(9);
  gauge->MaxTo(99);
  hist->Observe(7);
  {
    const ScopedTimer timer(hist);  // disarmed: no clock reads, no observe
  }
  Registry::SetEnabled(true);
  EXPECT_EQ(counter->Value(), 5u);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(hist->Count(), 0u);
}

TEST(TelemetryScopedTimer, FeedsHistogramAndCounter) {
  Registry& registry = Registry::Get();
  Histogram* hist = registry.GetHistogram("hk_test_timer_us", "test");
  Counter* total = registry.GetCounter("hk_test_timer_us_total", "test");
  {
    const ScopedTimer timer(hist, total);
  }
  {
    const ScopedTimer counter_only(nullptr, total);  // the source-wait idiom
  }
  EXPECT_EQ(hist->Count(), 1u);  // counter-only timer must not touch the histogram
}

#else  // HK_TELEMETRY_DISABLED

// Compile-out build: the stubs must stay drop-in (this test compiling IS
// most of the assertion) and render nothing.
TEST(TelemetryStubs, CompiledOutIsInert) {
  Registry& registry = Registry::Get();
  Counter* counter = registry.GetCounter("hk_test_stub_total", "test");
  counter->Add(5);
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(registry.SumCounter("hk_test_stub_total"), 0u);
  EXPECT_EQ(registry.RenderPrometheus(), "");
  EXPECT_FALSE(Registry::Enabled());
}

#endif  // HK_TELEMETRY_DISABLED

}  // namespace
}  // namespace hk::telemetry
