#include "trace/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

namespace hk {
namespace {

ZipfTraceConfig SmallConfig() {
  ZipfTraceConfig config;
  config.num_packets = 50000;
  config.num_ranks = 5000;
  config.skew = 1.0;
  config.seed = 11;
  return config;
}

TEST(ZipfTraceTest, ExactPacketCountWithoutClamp) {
  const Trace trace = MakeZipfTrace(SmallConfig());
  EXPECT_EQ(trace.num_packets(), 50000u);
}

TEST(ZipfTraceTest, FlowCountMatchesDistinctIds) {
  const Trace trace = MakeZipfTrace(SmallConfig());
  std::set<FlowId> distinct(trace.packets.begin(), trace.packets.end());
  EXPECT_EQ(trace.num_flows, distinct.size());
  EXPECT_LE(trace.num_flows, 5000u);
  EXPECT_GT(trace.num_flows, 1000u);
}

TEST(ZipfTraceTest, DeterministicForSameSeed) {
  const Trace a = MakeZipfTrace(SmallConfig());
  const Trace b = MakeZipfTrace(SmallConfig());
  EXPECT_EQ(a.packets, b.packets);
}

TEST(ZipfTraceTest, SeedChangesTrace) {
  ZipfTraceConfig config = SmallConfig();
  const Trace a = MakeZipfTrace(config);
  config.seed = 12;
  const Trace b = MakeZipfTrace(config);
  EXPECT_NE(a.packets, b.packets);
}

TEST(ZipfTraceTest, LargestFlowTracksZipfHead) {
  ZipfTraceConfig config = SmallConfig();
  const Trace trace = MakeZipfTrace(config);
  std::unordered_map<FlowId, uint64_t> counts;
  for (const FlowId id : trace.packets) {
    ++counts[id];
  }
  uint64_t max_count = 0;
  for (const auto& [id, c] : counts) {
    max_count = std::max(max_count, c);
  }
  // skew 1.0, m=5000: head share = 1/H(5000) ~ 1/9.1 of 50k ~ 5.5k.
  EXPECT_GT(max_count, 4000u);
  EXPECT_LT(max_count, 7500u);
}

TEST(ZipfTraceTest, ClampCapsFlowSizes) {
  ZipfTraceConfig config = SmallConfig();
  config.max_flow_size = 100;
  const Trace trace = MakeZipfTrace(config);
  std::unordered_map<FlowId, uint64_t> counts;
  for (const FlowId id : trace.packets) {
    ++counts[id];
  }
  for (const auto& [id, c] : counts) {
    EXPECT_LE(c, 100u);
  }
  EXPECT_LT(trace.num_packets(), 50000u);  // clamp removed head packets
}

TEST(ZipfTraceTest, ShuffleSpreadsHeavyFlow) {
  // The heaviest flow must not sit in one contiguous block: compare its
  // occurrences in the first and second half.
  const Trace trace = MakeZipfTrace(SmallConfig());
  std::unordered_map<FlowId, uint64_t> counts;
  for (const FlowId id : trace.packets) {
    ++counts[id];
  }
  FlowId heaviest = 0;
  uint64_t best = 0;
  for (const auto& [id, c] : counts) {
    if (c > best) {
      best = c;
      heaviest = id;
    }
  }
  uint64_t first_half = 0;
  for (size_t i = 0; i < trace.packets.size() / 2; ++i) {
    if (trace.packets[i] == heaviest) {
      ++first_half;
    }
  }
  EXPECT_NEAR(static_cast<double>(first_half), best / 2.0, best * 0.2);
}

TEST(CampusTraceTest, MatchesPaperShape) {
  const Trace trace = MakeCampusTrace(200000, 3);
  EXPECT_EQ(trace.key_kind, KeyKind::kFiveTuple13B);
  EXPECT_EQ(trace.name, "campus-like");
  // ~N/10 flows.
  EXPECT_GT(trace.num_flows, 10000u);
  EXPECT_LT(trace.num_flows, 22000u);
}

TEST(CaidaTraceTest, MouseDominated) {
  const Trace trace = MakeCaidaTrace(200000, 3);
  EXPECT_EQ(trace.key_kind, KeyKind::kAddrPair8B);
  std::unordered_map<FlowId, uint64_t> counts;
  for (const FlowId id : trace.packets) {
    ++counts[id];
  }
  uint64_t mice = 0;
  for (const auto& [id, c] : counts) {
    if (c <= 3) {
      ++mice;
    }
  }
  // The CAIDA-like trace is dominated by tiny flows.
  EXPECT_GT(static_cast<double>(mice) / counts.size(), 0.5);
}

TEST(SyntheticTraceTest, SkewControlsConcentration) {
  const Trace flat = MakeSyntheticTrace(100000, 0.6, 5);
  const Trace steep = MakeSyntheticTrace(100000, 2.4, 5);
  EXPECT_GT(flat.num_flows, steep.num_flows);
}

TEST(RankToFlowIdTest, DeterministicAndKindSeparated) {
  const FlowId a = RankToFlowId(7, KeyKind::kSynthetic4B, 9);
  EXPECT_EQ(a, RankToFlowId(7, KeyKind::kSynthetic4B, 9));
  EXPECT_NE(a, RankToFlowId(7, KeyKind::kAddrPair8B, 9));
  EXPECT_NE(a, RankToFlowId(8, KeyKind::kSynthetic4B, 9));
  EXPECT_NE(a, RankToFlowId(7, KeyKind::kSynthetic4B, 10));
}

TEST(ZipfStreamTest, DrawsFromSameUniverseAsTrace) {
  ZipfTraceConfig config = SmallConfig();
  const Trace trace = MakeZipfTrace(config);
  std::set<FlowId> universe(trace.packets.begin(), trace.packets.end());

  ZipfStream stream(config.num_ranks, config.skew, config.key_kind, config.seed);
  int misses = 0;
  for (int i = 0; i < 10000; ++i) {
    if (universe.count(stream.Next()) == 0) {
      ++misses;  // rank allocated 0 packets by largest-remainder rounding
    }
  }
  // The stream occasionally samples tail ranks the exact allocation zeroed
  // out, but the bulk must coincide.
  EXPECT_LT(misses, 2500);
}

TEST(ZipfStreamTest, HeadRankDominatesSamples) {
  ZipfStream stream(1000, 1.5, KeyKind::kSynthetic4B, 21);
  const FlowId head = RankToFlowId(0, KeyKind::kSynthetic4B, 21);
  int head_hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (stream.Next() == head) {
      ++head_hits;
    }
  }
  const double expected = stream.distribution().Pmf(0) * kN;
  EXPECT_NEAR(head_hits, expected, expected * 0.15 + 20);
}

class TraceScaleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceScaleSweep, GeneratorScalesLinearly) {
  const uint64_t n = GetParam();
  const Trace trace = MakeCampusTrace(n, 1);
  EXPECT_NEAR(static_cast<double>(trace.num_packets()), static_cast<double>(n), n * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Scales, TraceScaleSweep,
                         ::testing::Values(20000, 50000, 100000, 400000));

}  // namespace
}  // namespace hk
