#include "common/hash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

namespace hk {
namespace {

TEST(Mix64Test, IsDeterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_EQ(Mix64(0), Mix64(0));
}

TEST(Mix64Test, AppearsBijectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64Test, AvalanchesLowBits) {
  // Flipping one input bit should change roughly half the output bits.
  int total_flips = 0;
  for (uint64_t i = 1; i <= 64; ++i) {
    total_flips += __builtin_popcountll(Mix64(i) ^ Mix64(i ^ 1));
  }
  const double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashU64Test, SeedChangesOutput) {
  EXPECT_NE(HashU64(123, 1), HashU64(123, 2));
  EXPECT_EQ(HashU64(123, 7), HashU64(123, 7));
}

TEST(HashU64Test, DistinctKeysRarelyCollide) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 50000; ++i) {
    outputs.insert(HashU64(i, 99));
  }
  EXPECT_EQ(outputs.size(), 50000u);
}

TEST(HashBytesTest, MatchesForIdenticalInput) {
  const std::string data = "heavykeeper finds elephants";
  EXPECT_EQ(HashBytes(data.data(), data.size(), 5), HashBytes(data.data(), data.size(), 5));
}

TEST(HashBytesTest, SeedAndContentSensitive) {
  const std::string a = "flow-a";
  const std::string b = "flow-b";
  EXPECT_NE(HashBytes(a.data(), a.size(), 1), HashBytes(b.data(), b.size(), 1));
  EXPECT_NE(HashBytes(a.data(), a.size(), 1), HashBytes(a.data(), a.size(), 2));
}

TEST(HashBytesTest, AllLengthBranchesCovered) {
  // Exercise the 32-byte block loop, the 8/4-byte tails and the byte tail.
  std::vector<uint8_t> buf(100);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  std::set<uint64_t> outputs;
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 12u, 13u, 31u, 32u, 33u, 64u, 100u}) {
    outputs.insert(HashBytes(buf.data(), len, 0));
  }
  EXPECT_EQ(outputs.size(), 13u);  // all distinct
}

TEST(HashBytesTest, LastByteMatters) {
  std::vector<uint8_t> buf(13, 0xab);
  const uint64_t h1 = HashBytes(buf.data(), buf.size(), 3);
  buf.back() ^= 1;
  const uint64_t h2 = HashBytes(buf.data(), buf.size(), 3);
  EXPECT_NE(h1, h2);
}

TEST(TwoWiseHashTest, IndexInRange) {
  const TwoWiseHash h = TwoWiseHash::FromSeed(17);
  for (uint64_t w : {1ULL, 2ULL, 3ULL, 100ULL, 65536ULL, 999983ULL}) {
    for (uint64_t x = 0; x < 1000; ++x) {
      EXPECT_LT(h.Index(x, w), w);
    }
  }
}

TEST(TwoWiseHashTest, RoughlyUniformOverBuckets) {
  const TwoWiseHash h = TwoWiseHash::FromSeed(23);
  constexpr uint64_t kBuckets = 64;
  constexpr uint64_t kSamples = 64000;
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t x = 0; x < kSamples; ++x) {
    ++counts[h.Index(Mix64(x), kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_GT(c, expected * 0.7);
    EXPECT_LT(c, expected * 1.3);
  }
}

TEST(TwoWiseHashTest, DifferentSeedsDisagree) {
  const TwoWiseHash h1 = TwoWiseHash::FromSeed(1);
  const TwoWiseHash h2 = TwoWiseHash::FromSeed(2);
  int disagreements = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    if (h1.Index(x, 1024) != h2.Index(x, 1024)) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 900);
}

TEST(HashFamilyTest, FunctionsAreIndependentlySeeded) {
  HashFamily family(4, 7);
  ASSERT_EQ(family.size(), 4u);
  // The probability that two family members agree on > 5% of 1000 keys with
  // w = 256 is negligible for independent functions.
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = a + 1; b < 4; ++b) {
      int agreements = 0;
      for (uint64_t x = 0; x < 1000; ++x) {
        if (family.Index(a, Mix64(x), 256) == family.Index(b, Mix64(x), 256)) {
          ++agreements;
        }
      }
      EXPECT_LT(agreements, 50) << "arrays " << a << " and " << b;
    }
  }
}

TEST(HashFamilyTest, AddGrowsFamily) {
  HashFamily family(2, 3);
  family.Add(999);
  EXPECT_EQ(family.size(), 3u);
  // New function produces in-range indices.
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_LT(family.Index(2, x, 77), 77u);
  }
}

TEST(FingerprinterTest, NeverZeroAndWithinWidth) {
  const Fingerprinter fp(16, 1234);
  for (uint64_t x = 0; x < 100000; ++x) {
    const uint32_t f = fp(x);
    EXPECT_NE(f, 0u);
    EXPECT_LT(f, 1u << 16);
  }
}

TEST(FingerprinterTest, WidthControlsRange) {
  const Fingerprinter fp8(8, 5);
  uint32_t max_seen = 0;
  for (uint64_t x = 0; x < 10000; ++x) {
    max_seen = std::max(max_seen, fp8(x));
  }
  EXPECT_LT(max_seen, 256u);
  EXPECT_GT(max_seen, 200u);  // the full range is actually exercised
}

TEST(FingerprinterTest, CollisionRateNearExpectation) {
  // With 12-bit fingerprints and 3000 keys, expected distinct values
  // ~ 4096 * (1 - exp(-3000/4096)) ~ 2135.
  const Fingerprinter fp(12, 88);
  std::set<uint32_t> values;
  for (uint64_t x = 0; x < 3000; ++x) {
    values.insert(fp(x));
  }
  EXPECT_GT(values.size(), 1900u);
  EXPECT_LT(values.size(), 2400u);
}

}  // namespace
}  // namespace hk
