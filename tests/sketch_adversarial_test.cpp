// Adversarial and degenerate inputs, applied uniformly to every algorithm
// through the TopKAlgorithm interface: empty streams, single-flow streams,
// all-distinct streams, zero flow ids, and k larger than the flow count.
// None of these may crash, violate ordering, or fabricate flows.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "common/random.h"
#include "core/hk_topk.h"
#include "sketch/cm_sketch.h"
#include "sketch/cold_filter.h"
#include "sketch/count_sketch.h"
#include "sketch/counter_tree.h"
#include "sketch/css.h"
#include "sketch/elastic.h"
#include "sketch/frequent.h"
#include "sketch/heavy_guardian.h"
#include "sketch/lossy_counting.h"
#include "sketch/space_saving.h"

namespace hk {
namespace {

std::unique_ptr<TopKAlgorithm> Make(const std::string& name) {
  constexpr size_t kBudget = 16 * 1024;
  constexpr size_t kK = 20;
  if (name == "HK-Basic") {
    return HeavyKeeperTopK<>::FromMemory(HkVersion::kBasic, kBudget, kK, 4, 1);
  }
  if (name == "HK-Parallel") {
    return HeavyKeeperTopK<>::FromMemory(HkVersion::kParallel, kBudget, kK, 4, 1);
  }
  if (name == "HK-Minimum") {
    return HeavyKeeperTopK<>::FromMemory(HkVersion::kMinimum, kBudget, kK, 4, 1);
  }
  if (name == "SS") {
    return SpaceSaving::FromMemory(kBudget, 4);
  }
  if (name == "LC") {
    return LossyCounting::FromMemory(kBudget, 4);
  }
  if (name == "CSS") {
    return Css::FromMemory(kBudget, 1);
  }
  if (name == "CM") {
    return CmTopK::FromMemory(kBudget, kK, 4, 1);
  }
  if (name == "CountSketch") {
    return CountSketchTopK::FromMemory(kBudget, kK, 4, 1);
  }
  if (name == "Frequent") {
    return Frequent::FromMemory(kBudget, 4);
  }
  if (name == "Elastic") {
    return ElasticSketch::FromMemory(kBudget, 4, 1);
  }
  if (name == "ColdFilter") {
    return ColdFilter::FromMemory(kBudget, 4, 1);
  }
  if (name == "CounterTree") {
    return CounterTree::FromMemory(kBudget, 1);
  }
  if (name == "HeavyGuardian") {
    return HeavyGuardian::FromMemory(kBudget, 4, 1);
  }
  return nullptr;
}

const std::string kAllNames[] = {"HK-Basic", "HK-Parallel", "HK-Minimum",  "SS",
                                 "LC",       "CSS",         "CM",          "CountSketch",
                                 "Frequent", "Elastic",     "ColdFilter",  "CounterTree",
                                 "HeavyGuardian"};

class AdversarialSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AdversarialSweep, EmptyStreamReportsNothing) {
  auto algo = Make(GetParam());
  ASSERT_NE(algo, nullptr);
  EXPECT_TRUE(algo->TopK(20).empty());
  EXPECT_EQ(algo->EstimateSize(12345), 0u);
}

TEST_P(AdversarialSweep, SingleFlowStream) {
  auto algo = Make(GetParam());
  for (int i = 0; i < 5000; ++i) {
    algo->Insert(42);
  }
  const auto top = algo->TopK(20);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].id, 42u);
  // Every algorithm here is exact on an interference-free stream, except
  // Counter Tree whose noise correction may deviate slightly.
  if (GetParam() != "CounterTree") {
    EXPECT_EQ(top[0].count, 5000u) << GetParam();
  } else {
    EXPECT_NEAR(static_cast<double>(top[0].count), 5000.0, 300.0);
  }
  // No fabricated flows.
  for (const auto& fc : top) {
    EXPECT_EQ(fc.id, 42u);
  }
}

TEST_P(AdversarialSweep, AllDistinctStreamStaysOrdered) {
  auto algo = Make(GetParam());
  for (uint64_t i = 1; i <= 30000; ++i) {
    algo->Insert(Mix64(i));
  }
  const auto top = algo->TopK(20);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].count, top[i - 1].count) << GetParam();
  }
}

TEST_P(AdversarialSweep, ZeroFlowIdIsAcceptable) {
  auto algo = Make(GetParam());
  for (int i = 0; i < 100; ++i) {
    algo->Insert(0);
    algo->Insert(7);
  }
  // Flow 0 was real traffic; it must be visible to point queries. (Cold
  // Filter absorbs sub-threshold flows entirely, so its *report* is empty
  // here, but the estimate still reflects the packets.)
  EXPECT_GT(algo->EstimateSize(0), 0u) << GetParam();
  if (GetParam() != "ColdFilter") {
    EXPECT_FALSE(algo->TopK(5).empty());
  }
}

TEST_P(AdversarialSweep, KLargerThanFlowCount) {
  auto algo = Make(GetParam());
  for (int i = 0; i < 500; ++i) {
    algo->Insert(1);
    algo->Insert(2);
    algo->Insert(3);
  }
  const auto top = algo->TopK(1000);
  EXPECT_LE(top.size(), 1000u);
  // Cold Filter reports only flows hot enough to pass both filter layers
  // (> 255 packets); everyone else must report all three flows.
  EXPECT_GE(top.size(), 3u) << GetParam();
  std::set<FlowId> distinct;
  for (const auto& fc : top) {
    distinct.insert(fc.id);
  }
  EXPECT_EQ(distinct.size(), top.size()) << GetParam() << " reported duplicate flows";
}

TEST_P(AdversarialSweep, BurstThenSilenceKeepsElephant) {
  // An elephant that bursts early and then goes silent must survive a long
  // tail of mice in every decay/eviction scheme at this budget.
  auto algo = Make(GetParam());
  for (int i = 0; i < 20000; ++i) {
    algo->Insert(99);
  }
  Rng rng(5);
  for (int i = 0; i < 30000; ++i) {
    algo->Insert(1000 + rng.NextBounded(10000));
  }
  const auto top = algo->TopK(20);
  bool found = false;
  for (const auto& fc : top) {
    if (fc.id == 99) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << GetParam() << " evicted a 20k-packet elephant";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AdversarialSweep, ::testing::ValuesIn(kAllNames),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return s;
                         });

}  // namespace
}  // namespace hk
