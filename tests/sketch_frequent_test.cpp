#include "sketch/frequent.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace hk {
namespace {

TEST(FrequentTest, CountsWithinCapacity) {
  Frequent mg(4, 4);
  mg.Insert(1);
  mg.Insert(1);
  mg.Insert(2);
  EXPECT_EQ(mg.EstimateSize(1), 2u);
  EXPECT_EQ(mg.EstimateSize(2), 1u);
}

TEST(FrequentTest, DecrementAllOnFullMiss) {
  Frequent mg(2, 4);
  mg.Insert(1);
  mg.Insert(1);
  mg.Insert(2);
  // Structure full; flow 3 triggers decrement-all and is NOT admitted.
  mg.Insert(3);
  EXPECT_EQ(mg.EstimateSize(1), 1u);
  EXPECT_EQ(mg.EstimateSize(2), 0u);  // decremented to zero
  EXPECT_EQ(mg.EstimateSize(3), 0u);
  EXPECT_EQ(mg.offset(), 1u);
}

TEST(FrequentTest, FreedSlotReusedAfterDecrements) {
  Frequent mg(2, 4);
  mg.Insert(1);
  mg.Insert(1);
  mg.Insert(2);
  mg.Insert(3);  // decrement-all: flow 2 dies
  mg.Insert(3);  // now there is room: flow 3 admitted with effective count 1
  EXPECT_EQ(mg.EstimateSize(3), 1u);
}

TEST(FrequentTest, NeverOverestimates) {
  // Misra-Gries guarantee: estimate <= true count.
  Frequent mg(32, 4);
  std::map<FlowId, uint64_t> truth;
  Rng rng(5);
  for (int i = 0; i < 30000; ++i) {
    const FlowId id = (rng.NextBounded(100) < 50) ? rng.NextBounded(8) + 1
                                                  : rng.NextBounded(2000) + 10;
    mg.Insert(id);
    ++truth[id];
  }
  for (const auto& fc : mg.TopK(32)) {
    EXPECT_LE(fc.count, truth[fc.id]) << "flow " << fc.id;
  }
}

TEST(FrequentTest, UndercountBoundedByNOverM) {
  // MG guarantee: true - estimate <= N / (m + 1).
  const size_t m = 64;
  Frequent mg(m, 4);
  std::map<FlowId, uint64_t> truth;
  Rng rng(9);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const FlowId id = (rng.NextBounded(100) < 50) ? rng.NextBounded(8) + 1
                                                  : rng.NextBounded(4000) + 10;
    mg.Insert(id);
    ++truth[id];
  }
  const uint64_t bound = static_cast<uint64_t>(n) / (m + 1) + 1;
  for (const auto& [id, count] : truth) {
    const uint64_t est = mg.EstimateSize(id);
    EXPECT_LE(count - est, bound + count - std::min(count, est + bound))
        << "flow " << id;  // i.e. count - est <= bound
    EXPECT_LE(count, est + bound) << "flow " << id;
  }
}

TEST(FrequentTest, ElephantAlwaysSurvives) {
  Frequent mg(16, 4);
  Rng rng(21);
  for (int i = 0; i < 30000; ++i) {
    if (i % 3 == 0) {
      mg.Insert(1);
    } else {
      mg.Insert(rng.NextBounded(5000) + 10);
    }
  }
  const auto top = mg.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 1u);
}

TEST(FrequentTest, TopKExcludesDeadEntries) {
  Frequent mg(2, 4);
  mg.Insert(1);
  mg.Insert(2);
  mg.Insert(3);  // decrement-all: both 1 and 2 drop to 0
  const auto top = mg.TopK(2);
  EXPECT_TRUE(top.empty());
}

TEST(FrequentTest, MemoryAndName) {
  auto mg = Frequent::FromMemory(4096, 4);
  EXPECT_EQ(mg->name(), "Frequent");
  EXPECT_LE(mg->MemoryBytes(), 4096u + 24);
}

}  // namespace
}  // namespace hk
