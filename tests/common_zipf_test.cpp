#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hk {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  for (double skew : {0.0, 0.6, 1.0, 1.8, 3.0}) {
    ZipfDistribution dist(1000, skew);
    double sum = 0.0;
    for (size_t i = 0; i < dist.num_ranks(); ++i) {
      sum += dist.Pmf(i);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "skew " << skew;
  }
}

TEST(ZipfTest, PmfMonotonicallyDecreasing) {
  ZipfDistribution dist(500, 1.2);
  for (size_t i = 1; i < dist.num_ranks(); ++i) {
    EXPECT_LE(dist.Pmf(i), dist.Pmf(i - 1)) << "rank " << i;
  }
}

TEST(ZipfTest, MatchesAnalyticFormula) {
  // f_i = (1/i^gamma) / delta(gamma)  (Section VI-A footnote).
  const double gamma = 0.9;
  const size_t m = 100;
  ZipfDistribution dist(m, gamma);
  double delta = 0.0;
  for (size_t j = 1; j <= m; ++j) {
    delta += 1.0 / std::pow(static_cast<double>(j), gamma);
  }
  for (size_t i = 0; i < m; i += 7) {
    const double expected = (1.0 / std::pow(static_cast<double>(i + 1), gamma)) / delta;
    EXPECT_NEAR(dist.Pmf(i), expected, 1e-9);
  }
}

TEST(ZipfTest, HigherSkewConcentratesMass) {
  ZipfDistribution flat(1000, 0.6);
  ZipfDistribution steep(1000, 2.0);
  EXPECT_GT(steep.Pmf(0), flat.Pmf(0));
  EXPECT_LT(steep.Pmf(999), flat.Pmf(999));
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfDistribution dist(100, 0.0);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(dist.Pmf(i), 0.01, 1e-9);
  }
}

TEST(ZipfTest, SampleInRange) {
  ZipfDistribution dist(64, 1.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(dist.Sample(rng), 64u);
  }
}

TEST(ZipfTest, SampleFrequenciesTrackPmf) {
  ZipfDistribution dist(50, 1.1);
  Rng rng(9);
  constexpr int kN = 200000;
  std::vector<int> counts(50, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[dist.Sample(rng)];
  }
  for (size_t i = 0; i < 10; ++i) {  // head ranks have enough mass to test
    const double expected = dist.Pmf(i) * kN;
    EXPECT_NEAR(counts[i], expected, expected * 0.1 + 30) << "rank " << i;
  }
}

TEST(ZipfTest, SingleRankAlwaysSampled) {
  ZipfDistribution dist(1, 1.5);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dist.Sample(rng), 0u);
  }
}

class ZipfSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewSweep, TopRankShareGrowsWithSkew) {
  const double skew = GetParam();
  ZipfDistribution dist(10000, skew);
  // The largest flow's share must be a valid probability and must be at
  // least 1/m (uniform floor).
  EXPECT_GE(dist.Pmf(0), 1.0 / 10000);
  EXPECT_LE(dist.Pmf(0), 1.0);
  // CDF property via sampling: rank 0 frequency close to pmf.
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (dist.Sample(rng) == 0) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits, dist.Pmf(0) * kN, kN * 0.02 + 50);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewSweep,
                         ::testing::Values(0.6, 0.9, 1.2, 1.5, 1.8, 2.4, 3.0));

}  // namespace
}  // namespace hk
