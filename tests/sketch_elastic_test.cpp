#include "sketch/elastic.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace hk {
namespace {

TEST(ElasticTest, ResidentFlowCountsExactly) {
  ElasticSketch es(256, 1024, 4, 1);
  for (int i = 0; i < 500; ++i) {
    es.Insert(42);
  }
  EXPECT_EQ(es.EstimateSize(42), 500u);
}

TEST(ElasticTest, EvictionMovesResidentToLightPart) {
  // One bucket forces a contest: a small resident is evicted once the
  // challenger's negative votes reach lambda * vote+.
  ElasticSketch es(1, 64, 4, 2);
  es.Insert(1);  // resident, vote+ = 1
  // 8 mismatching packets trigger eviction (lambda = 8).
  for (int i = 0; i < 8; ++i) {
    es.Insert(2);
  }
  // Flow 2 should now own the bucket.
  EXPECT_GE(es.EstimateSize(2), 1u);
  // Flow 1's single packet lives in the light part.
  EXPECT_GE(es.EstimateSize(1), 1u);
}

TEST(ElasticTest, ElephantResistsEviction) {
  ElasticSketch es(1, 64, 4, 3);
  for (int i = 0; i < 1000; ++i) {
    es.Insert(1);
  }
  // 100 mouse packets: vote- / vote+ stays < 8, flow 1 keeps the bucket.
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    es.Insert(rng.NextBounded(50) + 2);
  }
  EXPECT_GE(es.EstimateSize(1), 1000u);
  const auto top = es.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 1u);
}

TEST(ElasticTest, FindsPlantedElephantsUnderNoise) {
  auto es = ElasticSketch::FromMemory(32 * 1024, 4, 7);
  Rng rng(9);
  for (int rep = 0; rep < 500; ++rep) {
    for (FlowId e = 1; e <= 8; ++e) {
      es->Insert(e);
    }
    for (int m = 0; m < 20; ++m) {
      es->Insert(1000 + rng.NextBounded(5000));
    }
  }
  const auto top = es->TopK(8);
  ASSERT_EQ(top.size(), 8u);
  int planted = 0;
  for (const auto& fc : top) {
    if (fc.id <= 8) {
      ++planted;
    }
  }
  EXPECT_GE(planted, 7);  // allow one unlucky hash collision
}

TEST(ElasticTest, LightPartCatchesNonResidentFlows) {
  ElasticSketch es(1, 4096, 4, 11);
  for (int i = 0; i < 100; ++i) {
    es.Insert(1);  // resident elephant
  }
  for (int i = 0; i < 30; ++i) {
    es.Insert(2);  // never wins the bucket; counted in light part
  }
  EXPECT_GE(es.EstimateSize(2), 25u);  // 8-bit light counters, maybe shared
}

TEST(ElasticTest, MemoryBudgetRespected) {
  const size_t budget = 50 * 1024;
  auto es = ElasticSketch::FromMemory(budget, 13, 1);
  EXPECT_LE(es->MemoryBytes(), budget + 32);
  EXPECT_GT(es->MemoryBytes(), budget * 9 / 10);
  EXPECT_EQ(es->name(), "Elastic");
}

}  // namespace
}  // namespace hk
